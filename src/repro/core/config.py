"""Configuration for the mapping-aware modulo scheduling MILP."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError

__all__ = ["SchedulerConfig"]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs of the MILP formulation (Sec. 3.2 / Sec. 4).

    Attributes
    ----------
    ii:
        Target initiation interval (the paper pipelines everything to II=1).
    tcp:
        Target clock period, ns.
    alpha / beta:
        Eq. 15 trade-off weights for LUT vs register bits (paper: 0.5/0.5).
    latency_bound:
        Horizon ``M`` on pipeline cycles. ``None`` derives it from the
        additive-delay heuristic schedule (always sufficient: mapping can
        only shorten a schedule) plus ``latency_margin``.
    latency_margin:
        Extra cycles added to the derived horizon (resource conflicts can
        push black boxes past the additive ASAP).
    time_limit:
        Solver wall-clock cap in seconds (the paper used 3600); best
        incumbent is accepted, mirroring Sec. 4.
    backend:
        MILP backend: ``"scipy"`` (HiGHS) or ``"bnb"``.
    max_cuts:
        Merged-cut cap per node passed to the enumerator.
    use_mapping:
        True = MILP-map (full cut sets); False = MILP-base (unit cuts only,
        i.e. "skipping the cut enumeration step", Sec. 4).
    paper_objective:
        True = cost every selected root ``Bits(v)`` LUTs exactly as Eq. 15;
        False (default) = refined per-cut LUT costs (free wiring, operator
        area; DESIGN.md note on Eq. 15).
    mip_rel_gap:
        Optional relative MIP gap passed to the solver.
    narrow:
        Run :func:`repro.ir.transforms.narrow_graph` before cut
        enumeration and MILP construction (dataflow-proven width
        shrinking and constant folding). ``--no-narrow`` on the CLI and
        ``narrow=False`` here are the escape hatch.
    presolve:
        Run :func:`repro.milp.presolve.presolve` on every scheduling
        model before handing it to the backend (``--no-presolve`` to
        ablate; see docs/performance.md).
    warm_start:
        Seed each solve with the list-scheduling heuristic's feasible
        schedule at the same II: a cutoff constraint for the scipy
        backend, an incumbent + branching hints for bnb
        (``--no-warm-start`` to ablate).
    partition:
        Solve via subgraph decomposition (:mod:`repro.partition`): cut the
        CDFG into cone- and recurrence-respecting subgraphs, solve each
        with the per-method MILP, stitch under boundary constraints, and
        iterate on the stitched cost model. This is the scaling path for
        paper-sized designs where the monolithic MILP explodes
        (docs/partitioning.md).
    partition_size:
        Target node count per subgraph before a new one is started. Atomic
        clusters (recurrence SCCs, merged cut cones) are never split, so a
        subgraph can exceed this.
    partition_rounds:
        Feedback re-cut budget: after the initial stitch, up to this many
        merge-the-worst-boundary rounds run, keeping the best verified
        result seen.
    vectorize:
        Select the numpy inner kernels for the bit-level and matrix hot
        paths (packed DEP/support bitmasks, the cut-merge filter,
        presolve activity/propagation, BnB branching scores). ``None``
        (default) defers to the ``REPRO_VECTORIZE`` environment
        variable, which defaults to on. Both implementations are
        bit-identical — the flag trades speed only, so it is *excluded*
        from fingerprints (see :meth:`fingerprint_fields`).
    """

    ii: int = 1
    tcp: float = 10.0
    alpha: float = 0.5
    beta: float = 0.5
    latency_bound: int | None = None
    latency_margin: int = 2
    time_limit: float | None = 120.0
    backend: str = "scipy"
    max_cuts: int = 12
    use_mapping: bool = True
    paper_objective: bool = False
    mip_rel_gap: float | None = None
    narrow: bool = True
    presolve: bool = True
    warm_start: bool = True
    partition: bool = False
    partition_size: int = 48
    partition_rounds: int = 2
    vectorize: bool | None = None

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise SchedulingError(f"II must be >= 1, got {self.ii}")
        if self.tcp <= 0:
            raise SchedulingError(f"Tcp must be positive, got {self.tcp}")
        if self.alpha < 0 or self.beta < 0:
            raise SchedulingError("alpha and beta must be non-negative")
        if self.partition_size < 1:
            raise SchedulingError(
                f"partition_size must be >= 1, got {self.partition_size}")
        if self.partition_rounds < 0:
            raise SchedulingError(
                f"partition_rounds must be >= 0, got {self.partition_rounds}")

    def fingerprint_fields(self) -> dict:
        """The fields hashed into a flow-cache fingerprint.

        Every result-affecting field is included: all of them can change
        the produced schedule (``time_limit`` and ``backend`` change
        which incumbent is accepted; ``narrow`` changes the scheduled
        graph). ``vectorize`` is excluded — the vectorized and reference
        kernels are bit-identical, so a cache entry computed either way
        is valid for both. Runtime-only knobs such as the jobs count or
        the cache directory deliberately live *outside* this config so
        they never perturb fingerprints.
        """
        import dataclasses

        fields = dict(sorted(dataclasses.asdict(self).items()))
        fields.pop("vectorize", None)
        return fields

"""Top-level schedulers: MILP-map and MILP-base (Sec. 4 method names).

:class:`MapScheduler` runs the full flow of the paper: word-level cut
enumeration, MILP construction, solve (with the time cap), extraction, and
independent verification. :class:`BaseScheduler` is the mapping-agnostic
control: it "skips the cut enumeration step" so every operation only has its
unit (standalone-operator) cut — the delays are then exactly the additive
pre-characterized ones, but scheduling and register minimization are still
exact.
"""

from __future__ import annotations

from dataclasses import replace

from ..cuts.cut import CutSet
from ..cuts.enumerate import CutEnumerator, prune_cut_sets
from ..errors import InfeasibleError, SolverError
from ..ir.graph import CDFG
from ..ir.validate import validate
from ..milp.model import Constraint, LinExpr, Solution, SolveStatus
from ..milp.presolve import presolve as run_presolve
from ..runtime.trace import Tracer
from ..scheduling.modulo import HeuristicModuloScheduler
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device
from .config import SchedulerConfig
from .formulation import MappingAwareFormulation
from .verify import verify_schedule

__all__ = ["MapScheduler", "BaseScheduler"]


class MapScheduler:
    """Mapping-aware modulo scheduling via MILP (the paper's contribution)."""

    method_name = "milp-map"

    def __init__(self, graph: CDFG, device: Device = XC7,
                 config: SchedulerConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        validate(graph)
        self.graph = graph
        self.device = device
        self.config = config or SchedulerConfig()
        #: Phase tracing (cut-enum / milp-build / solve spans). Always
        #: present; callers that care pass a shared flow-level tracer.
        self.tracer = tracer or Tracer()
        self.enumerator: CutEnumerator | None = None
        self.formulation: MappingAwareFormulation | None = None
        self.cuts: dict[int, CutSet] = {}
        #: Heuristic warm-start schedules keyed by their *actual* II; the
        #: heuristic may bump a target II upward, and a sweep reuses the
        #: bumped schedule when it reaches that II (docs/performance.md).
        self._warm_cache: dict[int, Schedule] = {}

    # ------------------------------------------------------------------
    def enumerate(self) -> dict[int, CutSet]:
        """Run cut enumeration (full sets for MILP-map)."""
        with self.tracer.span("cut-enum", method=self.method_name) as span:
            self.enumerator = CutEnumerator(
                self.graph, self.device.k, max_cuts=self.config.max_cuts,
                vectorize=self.config.vectorize,
            )
            self.cuts = self.enumerator.run()
            span.meta["candidates"] = self.enumerator.stats.candidates_generated
            # Dominance/over-budget pruning shrinks the model before it
            # is even built (one cut binary + its chain rows per drop).
            self.cuts, pruned = prune_cut_sets(
                self.graph, self.cuts, self.device,
                self.device.usable_period(self.config.tcp),
            )
            span.meta["cuts"] = sum(len(cs) for cs in self.cuts.values())
            span.meta["pruned"] = pruned
        return self.cuts

    def _horizon(self) -> int:
        if self.config.latency_bound is not None:
            return self.config.latency_bound
        heuristic = HeuristicModuloScheduler(self.graph, self.device,
                                             self.config.tcp)
        # The additive-delay latency upper-bounds the mapped latency; the
        # margin absorbs modulo packing of constrained black boxes.
        latency = heuristic.asap_latency()
        return max(1, latency) + self.config.latency_margin

    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        """Enumerate, build, solve, extract and verify."""
        if not self.cuts:
            self.enumerate()
        horizon = self._horizon()
        schedule = self._solve_with_horizon(horizon)
        if schedule is None:
            # One retry with a generous horizon before declaring defeat.
            schedule = self._solve_with_horizon(horizon * 2 + 4)
        if schedule is None:
            raise InfeasibleError(
                f"no feasible schedule for {self.graph.name} at "
                f"II={self.config.ii}, Tcp={self.config.tcp}"
            )
        return verify_schedule(schedule, self.device)

    def sweep(self, ii_max: int | None = None) -> Schedule:
        """Find the smallest feasible II >= ``config.ii`` (ascending).

        Cuts are enumerated once and shared by every probe. Presolve
        fails infeasible IIs fast (often without a single LP), and the
        heuristic warm-start cache chains across probes: a heuristic run
        that bumped itself to a larger II seeds the solve when the sweep
        reaches that II. ``self.config`` is left at the II that
        succeeded so the returned schedule and the scheduler agree.
        """
        if not self.cuts:
            self.enumerate()
        base = self.config
        cap = ii_max if ii_max is not None else base.ii + self._horizon()
        last_error: SolverError | None = None
        for ii in range(base.ii, cap + 1):
            self.config = replace(base, ii=ii)
            with self.tracer.context(ii=ii):
                try:
                    schedule = self._solve_with_horizon(self._horizon())
                except SolverError as exc:
                    last_error = exc
                    continue
            if schedule is not None:
                return verify_schedule(schedule, self.device)
        self.config = base
        if last_error is not None:
            raise last_error
        raise InfeasibleError(
            f"no feasible schedule for {self.graph.name} at any "
            f"II in [{base.ii}, {cap}], Tcp={base.tcp}"
        )

    # -- warm starts ----------------------------------------------------
    def _warm_schedule(self) -> tuple[Schedule | None, str | None]:
        """A feasible schedule at exactly ``config.ii``, or a reason why not.

        The mapping-aware heuristic (``core/heuristic.py``) runs over the
        *same* cut sets, so its cover translates directly into the MILP's
        cut binaries. The heuristic may bump the II upward; bumped
        schedules are cached for later sweep probes, never used early.
        """
        ii = self.config.ii
        cached = self._warm_cache.get(ii)
        if cached is not None:
            return cached, None
        from .heuristic import MappingAwareHeuristicScheduler

        try:
            heur = MappingAwareHeuristicScheduler(
                self.graph, self.device, self.config
            )
            heur.cuts = self.cuts
            sched = heur.schedule(ii)
        except Exception as exc:  # heuristic failures only cost the seed
            return None, f"heuristic-failed:{type(exc).__name__}"
        self._warm_cache.setdefault(sched.ii, sched)
        if sched.ii != ii:
            return None, f"heuristic-ii-bumped:{sched.ii}"
        return sched, None

    def _solve_with_horizon(self, horizon: int) -> Schedule | None:
        config = self.config
        with self.tracer.span("milp-build", method=self.method_name,
                              horizon=horizon) as span:
            self.formulation = MappingAwareFormulation(
                self.graph, self.cuts, self.device, config, horizon
            )
            model = self.formulation.build()
            span.meta["constraints"] = model.num_constraints
            span.meta["variables"] = model.num_vars
            span.meta["integer_variables"] = model.num_integer_vars

        # Model reduction: the solver only ever sees the reduced model;
        # solutions are lifted back through the Postsolve mapping.
        post = None
        solve_model = model
        if config.presolve:
            with self.tracer.span("presolve", method=self.method_name) as span:
                reduced, post = run_presolve(model,
                                             vectorize=config.vectorize)
                span.meta.update(post.stats.to_dict())
                if post.status is not None:
                    # Infeasibility proven without a single LP — the
                    # fast path for doomed II probes in a sweep.
                    span.meta["proved"] = "infeasible"
                    return None
                solve_model = reduced

        # Warm start: heuristic schedule -> model assignment -> cutoff
        # constraint (scipy) or incumbent + branch hints (bnb).
        warm_values = None
        warm_sched = None
        if config.warm_start:
            with self.tracer.span("warm-start",
                                  method=self.method_name) as span:
                warm_sched, reason = self._warm_schedule()
                if warm_sched is not None:
                    assignment = self.formulation.assignment_from_schedule(
                        warm_sched
                    )
                    if assignment is None:
                        reason = "outside-horizon"
                    elif model.check(assignment):
                        reason = "failed-model-check"
                    else:
                        warm_values = assignment
                        span.meta["objective"] = \
                            model.objective.value(assignment)
                if warm_values is None:
                    warm_sched = None
                span.meta["used"] = warm_values is not None
                if reason:
                    span.meta["reason"] = reason

        solver_kwargs: dict = {}
        if warm_values is not None:
            restricted = (post.restrict(warm_values) if post is not None
                          else dict(warm_values))
            if config.backend == "scipy" and solve_model.sense == "min":
                # HiGHS has no warm-start hook through scipy; an upper
                # cutoff on the objective prunes everything worse than
                # the heuristic. The slack keeps the optimum itself
                # comfortably inside the feasible region.
                obj = solve_model.objective
                warm_obj = model.objective.value(warm_values)
                slack = 1e-6 * max(1.0, abs(warm_obj))
                solve_model.add(
                    Constraint(
                        LinExpr(dict(obj.coeffs),
                                obj.constant - (warm_obj + slack)),
                        "<=",
                    ),
                    name="warm_cutoff",
                )
            elif config.backend == "bnb":
                solver_kwargs["warm_start"] = restricted
                solver_kwargs["branch_hints"] = restricted

        if config.backend == "scipy":
            solver_kwargs["mip_rel_gap"] = config.mip_rel_gap
        elif config.backend == "bnb":
            solver_kwargs["vectorize"] = config.vectorize
        with self.tracer.span("solve", method=self.method_name,
                              backend=config.backend) as span:
            solution = solve_model.solve(
                backend=config.backend,
                time_limit=config.time_limit,
                **solver_kwargs,
            )
            if post is not None:
                solution = post.expand(solution)
            span.meta["status"] = solution.status
            span.meta["solver_seconds"] = solution.solve_seconds
            span.meta["optimal"] = solution.status == SolveStatus.OPTIMAL
            if solution.stats:
                span.meta["solver_stats"] = dict(solution.stats)
        if solution.status == SolveStatus.INFEASIBLE:
            return None
        if solution.status == SolveStatus.NO_INCUMBENT:
            if warm_sched is not None and warm_values is not None:
                # The cap fired before the solver beat the heuristic —
                # but the heuristic schedule is feasible; use it.
                solution = Solution(
                    status=SolveStatus.FEASIBLE,
                    objective=model.objective.value(warm_values),
                    values=dict(warm_values),
                    message="warm-start fallback: time cap fired before "
                            "any solver incumbent",
                )
            else:
                raise SolverError(
                    f"time cap too tight: solver hit the "
                    f"{config.time_limit}s limit on {self.graph.name} "
                    f"({model.num_constraints} constraints) before finding "
                    f"any incumbent — raise time_limit or loosen mip_rel_gap"
                )
        if not solution.ok:
            raise SolverError(
                f"solver returned {solution.status}: {solution.message}"
            )
        return self.formulation.extract(solution, self.method_name)


class BaseScheduler(MapScheduler):
    """MILP-base: exact scheduling without mapping awareness (Sec. 4)."""

    method_name = "milp-base"

    def enumerate(self) -> dict[int, CutSet]:
        """Unit cuts only — max_cuts=0 disables cone growth entirely."""
        with self.tracer.span("cut-enum", method=self.method_name) as span:
            self.enumerator = CutEnumerator(self.graph, self.device.k,
                                            max_cuts=0,
                                            vectorize=self.config.vectorize)
            self.cuts = self.enumerator.run()
            span.meta["cuts"] = self.enumerator.stats.total_selectable
            span.meta["candidates"] = self.enumerator.stats.candidates_generated
        return self.cuts

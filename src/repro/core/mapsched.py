"""Top-level schedulers: MILP-map and MILP-base (Sec. 4 method names).

:class:`MapScheduler` runs the full flow of the paper: word-level cut
enumeration, MILP construction, solve (with the time cap), extraction, and
independent verification. :class:`BaseScheduler` is the mapping-agnostic
control: it "skips the cut enumeration step" so every operation only has its
unit (standalone-operator) cut — the delays are then exactly the additive
pre-characterized ones, but scheduling and register minimization are still
exact.
"""

from __future__ import annotations

from ..cuts.cut import CutSet
from ..cuts.enumerate import CutEnumerator
from ..errors import InfeasibleError, SolverError
from ..ir.graph import CDFG
from ..ir.validate import validate
from ..milp.model import SolveStatus
from ..scheduling.modulo import HeuristicModuloScheduler
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device
from .config import SchedulerConfig
from .formulation import MappingAwareFormulation
from .verify import verify_schedule

__all__ = ["MapScheduler", "BaseScheduler"]


class MapScheduler:
    """Mapping-aware modulo scheduling via MILP (the paper's contribution)."""

    method_name = "milp-map"

    def __init__(self, graph: CDFG, device: Device = XC7,
                 config: SchedulerConfig | None = None) -> None:
        validate(graph)
        self.graph = graph
        self.device = device
        self.config = config or SchedulerConfig()
        self.enumerator: CutEnumerator | None = None
        self.formulation: MappingAwareFormulation | None = None
        self.cuts: dict[int, CutSet] = {}

    # ------------------------------------------------------------------
    def enumerate(self) -> dict[int, CutSet]:
        """Run cut enumeration (full sets for MILP-map)."""
        self.enumerator = CutEnumerator(
            self.graph, self.device.k, max_cuts=self.config.max_cuts
        )
        self.cuts = self.enumerator.run()
        return self.cuts

    def _horizon(self) -> int:
        if self.config.latency_bound is not None:
            return self.config.latency_bound
        heuristic = HeuristicModuloScheduler(self.graph, self.device,
                                             self.config.tcp)
        # The additive-delay latency upper-bounds the mapped latency; the
        # margin absorbs modulo packing of constrained black boxes.
        latency = heuristic.asap_latency()
        return max(1, latency) + self.config.latency_margin

    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        """Enumerate, build, solve, extract and verify."""
        if not self.cuts:
            self.enumerate()
        horizon = self._horizon()
        schedule = self._solve_with_horizon(horizon)
        if schedule is None:
            # One retry with a generous horizon before declaring defeat.
            schedule = self._solve_with_horizon(horizon * 2 + 4)
        if schedule is None:
            raise InfeasibleError(
                f"no feasible schedule for {self.graph.name} at "
                f"II={self.config.ii}, Tcp={self.config.tcp}"
            )
        return verify_schedule(schedule, self.device)

    def _solve_with_horizon(self, horizon: int) -> Schedule | None:
        self.formulation = MappingAwareFormulation(
            self.graph, self.cuts, self.device, self.config, horizon
        )
        model = self.formulation.build()
        solution = model.solve(
            backend=self.config.backend,
            time_limit=self.config.time_limit,
            mip_rel_gap=self.config.mip_rel_gap,
        ) if self.config.backend == "scipy" else model.solve(
            backend=self.config.backend, time_limit=self.config.time_limit
        )
        if solution.status == SolveStatus.INFEASIBLE:
            return None
        if not solution.ok:
            raise SolverError(
                f"solver returned {solution.status}: {solution.message}"
            )
        return self.formulation.extract(solution, self.method_name)


class BaseScheduler(MapScheduler):
    """MILP-base: exact scheduling without mapping awareness (Sec. 4)."""

    method_name = "milp-base"

    def enumerate(self) -> dict[int, CutSet]:
        """Unit cuts only — max_cuts=0 disables cone growth entirely."""
        self.enumerator = CutEnumerator(self.graph, self.device.k, max_cuts=0)
        self.cuts = self.enumerator.run()
        return self.cuts

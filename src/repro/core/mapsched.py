"""Top-level schedulers: MILP-map and MILP-base (Sec. 4 method names).

:class:`MapScheduler` runs the full flow of the paper: word-level cut
enumeration, MILP construction, solve (with the time cap), extraction, and
independent verification. :class:`BaseScheduler` is the mapping-agnostic
control: it "skips the cut enumeration step" so every operation only has its
unit (standalone-operator) cut — the delays are then exactly the additive
pre-characterized ones, but scheduling and register minimization are still
exact.
"""

from __future__ import annotations

from ..cuts.cut import CutSet
from ..cuts.enumerate import CutEnumerator
from ..errors import InfeasibleError, SolverError
from ..ir.graph import CDFG
from ..ir.validate import validate
from ..milp.model import SolveStatus
from ..runtime.trace import Tracer
from ..scheduling.modulo import HeuristicModuloScheduler
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device
from .config import SchedulerConfig
from .formulation import MappingAwareFormulation
from .verify import verify_schedule

__all__ = ["MapScheduler", "BaseScheduler"]


class MapScheduler:
    """Mapping-aware modulo scheduling via MILP (the paper's contribution)."""

    method_name = "milp-map"

    def __init__(self, graph: CDFG, device: Device = XC7,
                 config: SchedulerConfig | None = None,
                 tracer: Tracer | None = None) -> None:
        validate(graph)
        self.graph = graph
        self.device = device
        self.config = config or SchedulerConfig()
        #: Phase tracing (cut-enum / milp-build / solve spans). Always
        #: present; callers that care pass a shared flow-level tracer.
        self.tracer = tracer or Tracer()
        self.enumerator: CutEnumerator | None = None
        self.formulation: MappingAwareFormulation | None = None
        self.cuts: dict[int, CutSet] = {}

    # ------------------------------------------------------------------
    def enumerate(self) -> dict[int, CutSet]:
        """Run cut enumeration (full sets for MILP-map)."""
        with self.tracer.span("cut-enum", method=self.method_name) as span:
            self.enumerator = CutEnumerator(
                self.graph, self.device.k, max_cuts=self.config.max_cuts
            )
            self.cuts = self.enumerator.run()
            span.meta["cuts"] = self.enumerator.stats.total_selectable
            span.meta["candidates"] = self.enumerator.stats.candidates_generated
        return self.cuts

    def _horizon(self) -> int:
        if self.config.latency_bound is not None:
            return self.config.latency_bound
        heuristic = HeuristicModuloScheduler(self.graph, self.device,
                                             self.config.tcp)
        # The additive-delay latency upper-bounds the mapped latency; the
        # margin absorbs modulo packing of constrained black boxes.
        latency = heuristic.asap_latency()
        return max(1, latency) + self.config.latency_margin

    # ------------------------------------------------------------------
    def schedule(self) -> Schedule:
        """Enumerate, build, solve, extract and verify."""
        if not self.cuts:
            self.enumerate()
        horizon = self._horizon()
        schedule = self._solve_with_horizon(horizon)
        if schedule is None:
            # One retry with a generous horizon before declaring defeat.
            schedule = self._solve_with_horizon(horizon * 2 + 4)
        if schedule is None:
            raise InfeasibleError(
                f"no feasible schedule for {self.graph.name} at "
                f"II={self.config.ii}, Tcp={self.config.tcp}"
            )
        return verify_schedule(schedule, self.device)

    def _solve_with_horizon(self, horizon: int) -> Schedule | None:
        with self.tracer.span("milp-build", method=self.method_name,
                              horizon=horizon) as span:
            self.formulation = MappingAwareFormulation(
                self.graph, self.cuts, self.device, self.config, horizon
            )
            model = self.formulation.build()
            span.meta["constraints"] = model.num_constraints
            span.meta["variables"] = model.num_vars
            span.meta["integer_variables"] = model.num_integer_vars
        with self.tracer.span("solve", method=self.method_name,
                              backend=self.config.backend) as span:
            solution = model.solve(
                backend=self.config.backend,
                time_limit=self.config.time_limit,
                mip_rel_gap=self.config.mip_rel_gap,
            ) if self.config.backend == "scipy" else model.solve(
                backend=self.config.backend, time_limit=self.config.time_limit
            )
            span.meta["status"] = solution.status
            span.meta["solver_seconds"] = solution.solve_seconds
            span.meta["optimal"] = solution.status == SolveStatus.OPTIMAL
        if solution.status == SolveStatus.INFEASIBLE:
            return None
        if solution.status == SolveStatus.NO_INCUMBENT:
            raise SolverError(
                f"time cap too tight: solver hit the "
                f"{self.config.time_limit}s limit on {self.graph.name} "
                f"({model.num_constraints} constraints) before finding any "
                f"incumbent — raise time_limit or loosen mip_rel_gap"
            )
        if not solution.ok:
            raise SolverError(
                f"solver returned {solution.status}: {solution.message}"
            )
        return self.formulation.extract(solution, self.method_name)


class BaseScheduler(MapScheduler):
    """MILP-base: exact scheduling without mapping awareness (Sec. 4)."""

    method_name = "milp-base"

    def enumerate(self) -> dict[int, CutSet]:
        """Unit cuts only — max_cuts=0 disables cone growth entirely."""
        with self.tracer.span("cut-enum", method=self.method_name) as span:
            self.enumerator = CutEnumerator(self.graph, self.device.k,
                                            max_cuts=0)
            self.cuts = self.enumerator.run()
            span.meta["cuts"] = self.enumerator.stats.total_selectable
            span.meta["candidates"] = self.enumerator.stats.candidates_generated
        return self.cuts

"""The mapping-aware modulo scheduling MILP (paper Sec. 3.2).

Builds a :class:`repro.milp.Model` implementing Eq. 2–15 with the
concretizations listed in DESIGN.md Sec. 4:

* per-cut delays ``D_v = sum_i d_{v,i} c_{v,i}`` instead of static ``d_v``
  (note 3);
* big-M linearization of the cycle-time ordering constraint Eq. 9 and of the
  interior-node time equality (note 4);
* loop-carried boundary entries shift both the dependence and the liveness
  bookkeeping by ``II * distance`` (note 5);
* explicit coverage constraints (every operation is a root or inside a
  selected cone);
* refined per-cut LUT costs by default, the paper's exact ``Bits(v)`` cost
  with ``paper_objective=True``.

The class exposes every variable group so tests can interrogate the model,
and :meth:`MappingAwareFormulation.extract` turns a solver assignment into a
:class:`~repro.scheduling.Schedule`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cuts.cut import Cut, CutSet
from ..errors import ModelError
from ..ir.graph import CDFG
from ..ir.types import OpKind
from ..milp.model import LinExpr, Model, Solution, Var
from ..scheduling.schedule import Schedule
from ..tech.area import AreaModel
from ..tech.delay import DelayModel
from ..tech.device import Device
from .config import SchedulerConfig

__all__ = ["MappingAwareFormulation", "FormulationStats"]


@dataclass
class FormulationStats:
    """Model-size bookkeeping (drives the Table 2 discussion)."""

    num_nodes: int = 0
    num_cut_vars: int = 0
    num_sched_vars: int = 0
    num_live_vars: int = 0
    num_constraints: int = 0
    horizon: int = 0
    live_horizon: int = 0
    notes: list[str] = field(default_factory=list)


class MappingAwareFormulation:
    """Builds and decodes the MILP for one CDFG.

    Parameters
    ----------
    graph:
        Validated CDFG.
    cuts:
        Cut sets from :func:`repro.cuts.enumerate_cuts` (MILP-map) or unit
        cuts only (MILP-base — see
        :meth:`repro.core.mapsched.BaseScheduler`).
    device / config:
        Target characterization and scheduler knobs.
    horizon:
        Pipeline-latency bound M (cycles).
    """

    def __init__(self, graph: CDFG, cuts: dict[int, CutSet], device: Device,
                 config: SchedulerConfig, horizon: int) -> None:
        self.graph = graph
        self.cuts = cuts
        self.device = device
        self.config = config
        self.horizon = int(horizon)
        if self.horizon < 1:
            raise ModelError(f"horizon must be >= 1, got {horizon}")
        self.delay_model = DelayModel(device, graph)
        self.area_model = AreaModel(device, graph)
        # Schedulers fill only the uncertainty-derated budget (like real
        # tools); the target period stays in config.tcp for reporting.
        self.budget = device.usable_period(config.tcp)
        self.model = Model(f"mapsched[{graph.name}]")
        self.stats = FormulationStats(horizon=self.horizon)

        # Variable groups (filled by build()).
        self.cut_vars: dict[int, list[tuple[Cut, Var]]] = {}
        self.sched_vars: dict[int, list[Var]] = {}
        self.live_vars: dict[int, list[Var]] = {}
        self.resource_vars: dict[str, Var] = {}
        self._built = False

    # ------------------------------------------------------------------
    # Node classification helpers
    # ------------------------------------------------------------------
    def _is_const(self, nid: int) -> bool:
        return self.graph.node(nid).kind is OpKind.CONST

    def _is_input(self, nid: int) -> bool:
        return self.graph.node(nid).kind is OpKind.INPUT

    def _schedulable_ids(self) -> list[int]:
        """Nodes that get s_{v,t} variables (everything but PIs/constants)."""
        return [
            n.nid for n in self.graph
            if n.kind not in (OpKind.INPUT, OpKind.CONST)
        ]

    def _forced_root(self, nid: int) -> bool:
        """Black boxes and OUTPUT sinks always select their unit cut."""
        node = self.graph.node(nid)
        return node.is_blackbox or node.kind is OpKind.OUTPUT

    # ------------------------------------------------------------------
    # Expression helpers
    # ------------------------------------------------------------------
    def s_expr(self, nid: int) -> LinExpr:
        """``S_v`` as a linear expression (Eq. 6); constants/PIs are 0."""
        if nid not in self.sched_vars:
            return LinExpr({}, 0.0)
        # Direct dict construction: building this with repeated `expr + t *
        # var` allocates O(horizon^2) intermediate dicts. Keeps the exact
        # reference coefficients (including the 0.0 entry at t = 0).
        return LinExpr(
            {var.index: float(t)
             for t, var in enumerate(self.sched_vars[nid])},
            0.0,
        )

    def l_var(self, nid: int) -> LinExpr:
        """``L_v`` as an expression; constants/PIs are 0."""
        var = self._l.get(nid)
        return var._expr() if var is not None else LinExpr({}, 0.0)

    def root_expr(self, nid: int) -> LinExpr:
        """``root_v`` (Eq. 2); 1 for PIs and forced roots, 0 for constants."""
        if self._is_const(nid):
            return LinExpr({}, 0.0)
        if self._is_input(nid) or self._forced_root(nid):
            return LinExpr({}, 1.0)
        return LinExpr(
            {var.index: 1.0 for _, var in self.cut_vars.get(nid, ())}, 0.0)

    def delay_expr(self, nid: int) -> LinExpr:
        """``D_v = sum_i d_{v,i} c_{v,i}`` (DESIGN.md note 3)."""
        node = self.graph.node(nid)
        if nid not in self.cut_vars:
            if self._forced_root(nid):
                if node.kind is OpKind.OUTPUT:
                    return LinExpr({}, 0.0)
                return LinExpr({}, self.delay_model.operator_delay(node))
            return LinExpr({}, 0.0)  # PI / const
        return LinExpr(
            {var.index: 1.0 * self.delay_model.cut_delay(node, cut)
             for cut, var in self.cut_vars[nid]},
            0.0,
        )

    def def_expr(self, nid: int, t: int) -> LinExpr:
        """``def_{v,t}`` (Eq. 10): available on or before cycle t."""
        if nid not in self.sched_vars:
            # PIs are available from cycle 0; constants never need registers.
            return LinExpr({}, 1.0 if self._is_input(nid) else 0.0)
        return LinExpr(
            {var.index: 1.0
             for z, var in enumerate(self.sched_vars[nid]) if z <= t},
            0.0,
        )

    def kill_expr(self, nid: int, t: int, shift: int) -> LinExpr:
        """``kill_{v,t}`` shifted by ``II*distance`` cycles (Eq. 11 + note 5)."""
        if nid not in self.sched_vars:
            return LinExpr({}, 1.0)
        return LinExpr(
            {var.index: 1.0
             for z, var in enumerate(self.sched_vars[nid]) if z + shift <= t},
            0.0,
        )

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Model:
        """Create all variables and constraints; returns the model."""
        if self._built:
            return self.model
        self._built = True
        self._l: dict[int, Var] = {}
        self._make_variables()
        self._cover_constraints()
        self._assignment_constraints()
        self._dependence_constraints()
        self._cycle_time_constraints()
        self._liveness_constraints()
        self._resource_constraints()
        self._objective()
        self.stats.num_nodes = len(self.graph)
        self.stats.num_constraints = self.model.num_constraints
        return self.model

    def _make_variables(self) -> None:
        m = self.model
        graph = self.graph
        for nid in self._schedulable_ids():
            node = graph.node(nid)
            self.sched_vars[nid] = [
                m.binary(f"s[{nid},{t}]") for t in range(self.horizon)
            ]
            self._l[nid] = m.continuous(f"L[{nid}]", 0.0, self.budget)
            if not self._forced_root(nid) and node.is_mappable:
                pairs = [
                    (cut, m.binary(f"c[{nid},{i}]"))
                    for i, cut in enumerate(self.cuts[nid].selectable)
                ]
                if not pairs:
                    raise ModelError(f"node {nid} has no selectable cuts")
                self.cut_vars[nid] = pairs
        self.stats.num_sched_vars = sum(len(v) for v in self.sched_vars.values())
        self.stats.num_cut_vars = sum(len(v) for v in self.cut_vars.values())

    # -- Eq. 2/3/4 + coverage -------------------------------------------
    def _cover_constraints(self) -> None:
        m = self.model
        graph = self.graph

        # root_v = sum_i c_{v,i} <= 1 (Eq. 2: root is binary).
        for nid, pairs in self.cut_vars.items():
            expr = LinExpr()
            for _, var in pairs:
                expr = expr + var
            m.add(expr <= 1, name=f"root_binary[{nid}]")

        # Eq. 3: primary outputs are roots (OUTPUT sinks are forced roots;
        # their unit cut then forces the producing op to be a root via Eq. 4).

        # Eq. 4: boundary nodes of a selected cut must be roots.
        for nid, pairs in self.cut_vars.items():
            for cut, var in pairs:
                for u in sorted(cut.boundary):
                    if self._is_const(u) or self._is_input(u):
                        continue
                    m.add(var <= self.root_expr(u),
                          name=f"cut_input_root[{nid},{u}]")
        for nid in self._schedulable_ids():
            if not self._forced_root(nid):
                continue
            cs = self.cuts[nid]
            unit = cs.unit
            if unit is None:
                continue
            for u in sorted(unit.boundary):
                if self._is_const(u) or self._is_input(u):
                    continue
                m.add(self.root_expr(u) >= 1,
                      name=f"forced_input_root[{nid},{u}]")

        # Coverage: every mappable op is a root or interior to a selected
        # cone (implicit in the paper; explicit here for robustness).
        interior_of: dict[int, list[Var]] = {}
        for nid, pairs in self.cut_vars.items():
            for cut, var in pairs:
                for w in cut.interior:
                    interior_of.setdefault(w, []).append(var)
        for nid in self.cut_vars:
            expr = self.root_expr(nid)
            for var in interior_of.get(nid, ()):
                expr = expr + var
            m.add(expr >= 1, name=f"cover[{nid}]")

    # -- Eq. 5 ----------------------------------------------------------
    def _assignment_constraints(self) -> None:
        for nid, svars in self.sched_vars.items():
            expr = LinExpr()
            for var in svars:
                expr = expr + var
            self.model.add(expr == 1, name=f"assign[{nid}]")

    # -- Eq. 7 ----------------------------------------------------------
    def _dependence_constraints(self) -> None:
        ii = self.config.ii
        for node in self.graph:
            if self._is_const(node.nid):
                continue
            sv = self.s_expr(node.nid)
            for op in node.operands:
                if self._is_const(op.source):
                    continue
                su = self.s_expr(op.source)
                self.model.add(
                    su - sv - ii * op.distance <= 0,
                    name=f"dep[{op.source}->{node.nid}]",
                )

    # -- Eq. 8 / Eq. 9 / interior equality ---------------------------------
    def _cycle_time_constraints(self) -> None:
        m = self.model
        tcp = self.budget
        ii = self.config.ii
        big = tcp * (self.horizon + ii * self._max_entry_distance() + 2)

        # Eq. 8: a root's cone must fit in its cycle.
        for nid in self._schedulable_ids():
            m.add(self.l_var(nid) + self.delay_expr(nid) <= tcp,
                  name=f"cycletime[{nid}]")

        def abs_time(nid: int) -> LinExpr:
            return tcp * self.s_expr(nid) + self.l_var(nid)

        # Eq. 9 (big-M, per-cut delays): for each cut i of v and each
        # boundary entry (u, dist): if c_{v,i}=1 then u's value (produced
        # dist iterations earlier) is finished before v starts.
        for nid, pairs in self.cut_vars.items():
            for cut, cvar in pairs:
                for u, dist in cut.entries:
                    if self._is_const(u):
                        continue
                    lhs = (abs_time(u) + self.delay_expr(u)
                           - abs_time(nid) - tcp * ii * dist)
                    m.add(lhs <= big * (1 - cvar),
                          name=f"chain[{nid},{u}@{dist}]")
        # Same for forced roots (their unit cut is always selected).
        for nid in self._schedulable_ids():
            if not self._forced_root(nid):
                continue
            unit = self.cuts[nid].unit
            if unit is None:
                continue
            for u, dist in unit.entries:
                if self._is_const(u):
                    continue
                lhs = (abs_time(u) + self.delay_expr(u)
                       - abs_time(nid) - tcp * ii * dist)
                m.add(lhs <= 0, name=f"chain_forced[{nid},{u}@{dist}]")

        # Interior equality (DESIGN.md note 4): nodes swallowed by a cone
        # execute "at" the root's time. Cycle equality is pinned separately
        # from absolute-time equality because (cycle, L=budget) and
        # (cycle+1, L=0) alias in absolute time.
        horizon = self.horizon
        for nid, pairs in self.cut_vars.items():
            for cut, cvar in pairs:
                for w in sorted(cut.interior):
                    if w not in self.sched_vars:
                        continue
                    diff = abs_time(w) - abs_time(nid)
                    m.add(diff <= big * (1 - cvar),
                          name=f"interior_le[{nid},{w}]")
                    m.add((-1 * diff) <= big * (1 - cvar),
                          name=f"interior_ge[{nid},{w}]")
                    sdiff = self.s_expr(w) - self.s_expr(nid)
                    m.add(sdiff <= horizon * (1 - cvar),
                          name=f"interior_cycle_le[{nid},{w}]")
                    m.add((-1 * sdiff) <= horizon * (1 - cvar),
                          name=f"interior_cycle_ge[{nid},{w}]")

    def _max_entry_distance(self) -> int:
        best = 0
        for cs in self.cuts.values():
            for cut in cs.selectable:
                for _, dist in cut.entries:
                    best = max(best, dist)
        return best

    # -- Eq. 10-13 ----------------------------------------------------------
    def _liveness_constraints(self) -> None:
        m = self.model
        ii = self.config.ii
        live_horizon = self.horizon + ii * self._max_entry_distance()
        self.stats.live_horizon = live_horizon

        # consumed[v][(u, dist)] = sum of c_{v,i} over cuts whose entries
        # contain (u, dist); constant 1 for forced roots.
        consumers: dict[tuple[int, int, int], LinExpr] = {}

        def note_entry(v: int, u: int, dist: int, expr_or_one) -> None:
            key = (u, dist, v)
            cur = consumers.get(key)
            if cur is None:
                cur = LinExpr()
            consumers[key] = cur + expr_or_one

        for v, pairs in self.cut_vars.items():
            for cut, cvar in pairs:
                for u, dist in cut.entries:
                    if self._is_const(u):
                        continue
                    note_entry(v, u, dist, cvar)
        for v in self._schedulable_ids():
            if not self._forced_root(v):
                continue
            unit = self.cuts[v].unit
            if unit is None:
                continue
            for u, dist in unit.entries:
                if self._is_const(u):
                    continue
                note_entry(v, u, dist, 1.0)

        # live variables for every producer that appears as an entry.
        producers = sorted({u for (u, _, _) in consumers})
        for u in producers:
            node = self.graph.node(u)
            if node.kind is OpKind.OUTPUT:
                continue
            self.live_vars[u] = [
                m.binary(f"live[{u},{t}]") for t in range(live_horizon)
            ]
        self.stats.num_live_vars = sum(len(v) for v in self.live_vars.values())

        # Eq. 12 with the consumed-aggregation and distance shift.
        for (u, dist, v), consumed in consumers.items():
            if u not in self.live_vars:
                continue
            for t in range(live_horizon):
                lhs = (self.def_expr(u, t)
                       - self.kill_expr(v, t, ii * dist)
                       - (1 - consumed))
                m.add(lhs <= self.live_vars[u][t],
                      name=f"live[{u},{v},{dist},{t}]")

    # -- Eq. 14 ----------------------------------------------------------
    def _resource_constraints(self) -> None:
        m = self.model
        ii = self.config.ii
        by_class: dict[str, list[int]] = {}
        for node in self.graph:
            if node.is_blackbox and node.rclass:
                by_class.setdefault(node.rclass, []).append(node.nid)
        for rclass, members in sorted(by_class.items()):
            cap = self.device.blackbox_counts.get(rclass)
            hi = cap if cap is not None else len(members)
            xr = m.integer(f"X[{rclass}]", 0, hi)
            self.resource_vars[rclass] = xr
            for slot in range(ii):
                expr = LinExpr()
                for v in members:
                    for t, var in enumerate(self.sched_vars[v]):
                        if t % ii == slot:
                            expr = expr + var
                m.add(expr - xr <= 0, name=f"res[{rclass},{slot}]")

    # -- Eq. 15 ----------------------------------------------------------
    def _objective(self) -> None:
        alpha = self.config.alpha
        beta = self.config.beta
        obj = LinExpr()
        for nid, pairs in self.cut_vars.items():
            node = self.graph.node(nid)
            for cut, var in pairs:
                if self.config.paper_objective:
                    cost = self.area_model.paper_lut_cost(node)
                else:
                    cost = self.area_model.cut_lut_cost(node, cut)
                if cost:
                    obj = obj + alpha * cost * var
        for u, lvars in self.live_vars.items():
            bits = self.area_model.register_bits(self.graph.node(u))
            for var in lvars:
                obj = obj + beta * bits * var
        # Tiny latency regularizer: among equal-cost schedules prefer the
        # shorter one (coefficient far below any real cost delta).
        for nid in self.sched_vars:
            obj = obj + 1e-4 * self.s_expr(nid)
        self.model.minimize(obj)

    # ------------------------------------------------------------------
    # Encode (warm starts)
    # ------------------------------------------------------------------
    def assignment_from_schedule(self, schedule: Schedule
                                 ) -> dict[int, float] | None:
        """Translate a feasible :class:`Schedule` into a model assignment.

        The inverse of :meth:`extract`, used to seed the solver with the
        heuristic schedule (see ``docs/performance.md``). Returns ``None``
        when the schedule does not fit this formulation (cycle beyond the
        horizon, cover cut not among the enumerated ones at a node that
        needs one) — callers always re-validate the result with
        :meth:`Model.check` before trusting it, so this only needs to be
        best-effort.
        """
        if not self._built:
            raise ModelError("build() the formulation before encoding into it")
        ii = self.config.ii
        values: dict[int, float] = {}

        # Schedule + cycle-offset variables.
        for nid, svars in self.sched_vars.items():
            t = schedule.cycle.get(nid)
            if t is None or not (0 <= t < self.horizon):
                return None
            for z, var in enumerate(svars):
                values[var.index] = 1.0 if z == t else 0.0
            start = float(schedule.start.get(nid, 0.0))
            values[self._l[nid].index] = min(max(start, 0.0), self.budget)

        # Cut-selection binaries: exact cut match (coverage of interior
        # nodes then follows from the selected roots' cones).
        for nid, pairs in self.cut_vars.items():
            chosen = schedule.cover.get(nid)
            for cut, var in pairs:
                values[var.index] = 1.0 if cut == chosen else 0.0

        def consumed(u: int, dist: int, v: int) -> bool:
            for cut, var in self.cut_vars.get(v, ()):
                if values.get(var.index) == 1.0 and (u, dist) in cut.entries:
                    return True
            if self._forced_root(v):
                unit = self.cuts[v].unit
                if unit is not None and (u, dist) in unit.entries:
                    return True
            return False

        # Liveness: live[u,t] must dominate def - kill - (1 - consumed)
        # for every consumer; with one cut selected per node this is
        # exactly "defined by t, not yet killed by every consumer".
        def cycle_of(nid: int) -> int | None:
            return schedule.cycle.get(nid) if nid in self.sched_vars else None

        for u, lvars in self.live_vars.items():
            u_cycle = cycle_of(u)
            kills: list[tuple[int, int]] = []  # (consumer, dist) per use
            for v, pairs in self.cut_vars.items():
                for cut, var in pairs:
                    if values.get(var.index) != 1.0:
                        continue
                    for eu, dist in cut.entries:
                        if eu == u:
                            kills.append((v, dist))
            for v in self._schedulable_ids():
                if not self._forced_root(v):
                    continue
                unit = self.cuts[v].unit
                if unit is None:
                    continue
                for eu, dist in unit.entries:
                    if eu == u:
                        kills.append((v, dist))
            for t, lvar in enumerate(lvars):
                live = 0.0
                for v, dist in kills:
                    defined = u_cycle is None or u_cycle <= t
                    v_cycle = cycle_of(v)
                    killed = v_cycle is None or v_cycle + ii * dist <= t
                    if defined and not killed and consumed(u, dist, v):
                        live = 1.0
                        break
                values[lvar.index] = live

        # Resource counters: the max modulo-slot occupancy actually used.
        for rclass, xr in self.resource_vars.items():
            slots = [0] * ii
            for node in self.graph:
                if node.is_blackbox and node.rclass == rclass:
                    t = schedule.cycle.get(node.nid)
                    if t is not None and node.nid in self.sched_vars:
                        slots[t % ii] += 1
            values[xr.index] = float(min(max(slots), xr.hi))
        return values

    # ------------------------------------------------------------------
    # Decode
    # ------------------------------------------------------------------
    def extract(self, solution: Solution, method: str) -> Schedule:
        """Turn a solver assignment into a verified-shape Schedule."""
        if not solution.ok:
            raise ModelError(
                f"cannot extract schedule from status {solution.status!r}"
            )
        cycle: dict[int, int] = {}
        start: dict[int, float] = {}
        cover: dict[int, Cut] = {}
        for nid, svars in self.sched_vars.items():
            chosen = [t for t, var in enumerate(svars)
                      if solution.int_value(var) == 1]
            if len(chosen) != 1:
                raise ModelError(f"node {nid}: {len(chosen)} cycles selected")
            cycle[nid] = chosen[0]
            start[nid] = max(0.0, solution[self._l[nid]])
        for node in self.graph:
            if node.kind in (OpKind.INPUT, OpKind.CONST):
                cycle[node.nid] = 0
                start[node.nid] = 0.0
        for nid, pairs in self.cut_vars.items():
            selected = [cut for cut, var in pairs
                        if solution.int_value(var) == 1]
            if len(selected) > 1:
                raise ModelError(f"node {nid}: multiple cuts selected")
            if selected:
                cover[nid] = selected[0]
        for nid in self._schedulable_ids():
            if self._forced_root(nid):
                unit = self.cuts[nid].unit
                if unit is not None:
                    cover[nid] = unit
        for node in self.graph.inputs:
            cover[node.nid] = self.cuts[node.nid].trivial

        return Schedule(
            graph=self.graph,
            ii=self.config.ii,
            tcp=self.budget,
            cycle=cycle,
            start=start,
            cover=cover,
            method=method,
            objective=solution.objective,
            solve_seconds=solution.solve_seconds,
            optimal=solution.status == "optimal",
        )

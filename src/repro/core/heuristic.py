"""A scalable mapping-aware heuristic scheduler (the paper's future work).

Sec. 5 names "incorporating mapping awareness into a scalable heuristic
pipeline scheduling algorithm" as future work; this module builds that
system. Instead of one joint MILP it runs two polynomial passes:

1. **Global cover selection** — a FlowMap-flavoured depth labeling over the
   word-level cuts (registered entries restart the depth count), followed
   by greedy area recovery from the outputs. Cones are fanout-free, so no
   logic is duplicated and interiors can be co-timed with their roots.
2. **Modulo scheduling of the LUT network** — the existing heuristic
   scheduler runs with per-node delays taken from the *selected cover*
   (one LUT level per mapped cone, operator delay for unit fallbacks,
   zero for absorbed nodes), then interiors are snapped onto their roots.

Quality sits between the additive-delay flows and MILP-map: it sees through
LUT packing (so it deletes the same pipeline stages MILP-map deletes on
logic-dominated kernels) but makes no exact register-minimization claims.
"""

from __future__ import annotations

from ..cuts.cut import Cut, CutSet
from ..cuts.enumerate import CutEnumerator
from ..errors import MappingError
from ..ir.graph import CDFG
from ..ir.types import OpKind
from ..ir.validate import validate
from ..scheduling.modulo import HeuristicModuloScheduler
from ..scheduling.schedule import Schedule
from ..tech.delay import DelayModel
from ..tech.device import XC7, Device
from .config import SchedulerConfig
from .verify import verify_schedule

__all__ = ["MappingAwareHeuristicScheduler"]


class MappingAwareHeuristicScheduler:
    """Map-then-schedule: polynomial-time mapping-aware pipelining."""

    method_name = "heur-map"

    def __init__(self, graph: CDFG, device: Device = XC7,
                 config: SchedulerConfig | None = None) -> None:
        validate(graph)
        self.graph = graph
        self.device = device
        self.config = config or SchedulerConfig()
        self.delay_model = DelayModel(device, graph)
        self.cuts: dict[int, CutSet] = {}
        self.cover: dict[int, Cut] = {}

    # ------------------------------------------------------------------
    # Pass 1: global cover selection
    # ------------------------------------------------------------------
    def _fanout_free(self, root: int, cut: Cut) -> bool:
        inside = cut.interior | {root}
        for w in cut.interior:
            for use in self.graph.uses(w):
                if use.consumer not in inside:
                    return False
        return True

    def _depth_labels(self) -> dict[int, int]:
        """FlowMap-style LUT-depth label per node over feasible cuts."""
        graph = self.graph
        labels: dict[int, int] = {}
        for nid in graph.topological_order():
            node = graph.node(nid)
            if node.kind in (OpKind.INPUT, OpKind.CONST):
                labels[nid] = 0
                continue
            best = None
            for cut in self.cuts[nid].selectable:
                level = 0
                for u, dist in cut.entries:
                    if dist > 0:
                        continue  # registered: depth restarts
                    level = max(level, labels.get(u, 0))
                cost = 0 if self.delay_model.cut_delay(node, cut) == 0.0 else 1
                candidate = level + cost
                if best is None or candidate < best:
                    best = candidate
            labels[nid] = best if best is not None else 0
        return labels

    def select_cover(self) -> dict[int, Cut]:
        """Greedy depth-then-area cover (fanout-free cones only)."""
        graph = self.graph
        labels = self._depth_labels()
        cover: dict[int, Cut] = {}
        required: set[int] = set()
        worklist: list[int] = []

        def require(nid: int) -> None:
            if graph.node(nid).kind in (OpKind.INPUT, OpKind.CONST):
                return
            if nid not in required:
                required.add(nid)
                worklist.append(nid)

        for node in graph:
            if node.kind is OpKind.OUTPUT or node.is_blackbox:
                require(node.nid)
            for op in node.operands:
                if op.distance > 0:
                    require(op.source)

        while worklist:
            nid = worklist.pop()
            if nid in cover:
                continue
            node = graph.node(nid)
            cs = self.cuts[nid]
            if node.kind is OpKind.OUTPUT or node.is_blackbox:
                if cs.unit is None:
                    raise MappingError(f"sink {nid} has no unit cut")
                cover[nid] = cs.unit
                for u in cs.unit.boundary:
                    require(u)
                continue
            best = None
            best_key = None
            for cut in cs.selectable:
                if not cut.is_unit and (not cut.feasible(self.device.k)
                                        or not self._fanout_free(nid, cut)):
                    continue
                depth = 0
                for u, dist in cut.entries:
                    if dist == 0:
                        depth = max(depth, labels.get(u, 0))
                new_roots = sum(
                    1 for u in cut.boundary
                    if u not in required
                    and graph.node(u).kind not in (OpKind.INPUT, OpKind.CONST)
                )
                key = (depth, new_roots, len(cut.boundary),
                       tuple(sorted(cut.boundary)))
                if best_key is None or key < best_key:
                    best_key = key
                    best = cut
            if best is None:
                raise MappingError(f"node {nid} has no usable cut")
            cover[nid] = best
            for u in best.boundary:
                require(u)

        for node in graph.inputs:
            cover[node.nid] = self.cuts[node.nid].trivial
        self.cover = cover
        return cover

    # ------------------------------------------------------------------
    # Pass 2: schedule the mapped network
    # ------------------------------------------------------------------
    def schedule(self, target_ii: int | None = None) -> Schedule:
        """Map, schedule with mapped delays, snap interiors, verify."""
        if not self.cuts:
            self.cuts = CutEnumerator(self.graph, self.device.k,
                                      max_cuts=self.config.max_cuts).run()
        cover = self.select_cover()

        def mapped_delay(nid: int) -> float:
            node = self.graph.node(nid)
            cut = cover.get(nid)
            if cut is None or cut.is_trivial:
                return 0.0  # absorbed (or a primary input)
            return self.delay_model.cut_delay(node, cut)

        scheduler = HeuristicModuloScheduler(
            self.graph, self.device, self.config.tcp,
            delay_fn=mapped_delay, method=self.method_name,
        )
        sched = scheduler.schedule(target_ii or self.config.ii)
        sched.cover = cover

        # Interiors execute inside their root's LUT: co-time them. Cones
        # are fanout-free, so no other consumer observes the snapped time.
        for nid, cut in cover.items():
            for w in cut.interior:
                sched.cycle[w] = sched.cycle[nid]
                sched.start[w] = sched.start[nid]
        return verify_schedule(sched, self.device)

"""The paper's core contribution: mapping-aware modulo scheduling MILP."""

from .config import SchedulerConfig
from .formulation import FormulationStats, MappingAwareFormulation
from .heuristic import MappingAwareHeuristicScheduler
from .mapsched import BaseScheduler, MapScheduler
from .verify import schedule_problems, verify_schedule

__all__ = [
    "BaseScheduler",
    "FormulationStats",
    "MapScheduler",
    "MappingAwareFormulation",
    "MappingAwareHeuristicScheduler",
    "SchedulerConfig",
    "schedule_problems",
    "verify_schedule",
]

"""Independent schedule verification.

Re-checks a :class:`~repro.scheduling.Schedule` + cover against the problem
statement of Sec. 3 without reusing any MILP machinery: coverage, cut
feasibility, root/boundary consistency, cycle-time budgets, dependence and
recurrence timing, and black-box resource limits. Every scheduler in the
library funnels its result through :func:`verify_schedule`, so a formulation
bug cannot silently ship a bogus QoR number.

The constraint checks themselves live in
:mod:`repro.analysis.schedule_rules` as registered rules (codes
``SCH001``–``SCH010``); :func:`schedule_problems` is the backward-compatible
string facade and :func:`verify_schedule` raises with the full
:class:`~repro.analysis.DiagnosticReport` attached.
"""

from __future__ import annotations

from ..errors import ScheduleVerificationError
from ..scheduling.schedule import Schedule
from ..tech.device import Device

__all__ = ["verify_schedule", "schedule_problems"]


def schedule_problems(schedule: Schedule, device: Device) -> list[str]:
    """Return all constraint violations (empty list = valid)."""
    from ..analysis import schedule_rules
    from ..analysis.registry import AnalysisContext

    ctx = AnalysisContext(graph=schedule.graph, schedule=schedule,
                          device=device)

    problems = [d.message for d in schedule_rules.unscheduled_node(ctx)]
    if problems:
        return problems

    # The historical checker walked the cover once, emitting root-mismatch,
    # infeasibility and cut-input findings per entry; merge the per-rule
    # streams back into that interleaved order.
    entry_order = {nid: i for i, nid in enumerate(schedule.cover)}
    legality: list[tuple[int, int, int, str]] = []
    cover_checks = (schedule_rules.cover_root_mismatch,
                    schedule_rules.infeasible_cut,
                    schedule_rules.cut_input_not_root)
    for check_idx, check in enumerate(cover_checks):
        for seq, diag in enumerate(check(ctx)):
            pos = entry_order.get(diag.node, len(entry_order))
            legality.append((pos, check_idx, seq, diag.message))
    legality.sort(key=lambda item: (item[0], item[1], item[2]))
    problems = [message for _, _, _, message in legality]

    for check in (schedule_rules.uncovered_operation,
                  schedule_rules.interior_not_cotimed,
                  schedule_rules.cycle_budget_exceeded,
                  schedule_rules.chaining_violation,
                  schedule_rules.dependence_violation,
                  schedule_rules.resource_oversubscribed):
        problems.extend(d.message for d in check(ctx))
    return problems


def verify_schedule(schedule: Schedule, device: Device) -> Schedule:
    """Raise :class:`ScheduleVerificationError` on any violation.

    The full diagnostic report (including sub-error findings such as
    recurrence-slack warnings) rides along on the exception's ``report``
    attribute for machine consumption.
    """
    from ..analysis import lint_schedule

    report = lint_schedule(schedule, device)
    errors = report.filter(min_severity="error")
    if errors:
        raise ScheduleVerificationError(errors.messages(), report=report)
    return schedule

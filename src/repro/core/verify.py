"""Independent schedule verification.

Re-checks a :class:`~repro.scheduling.Schedule` + cover against the problem
statement of Sec. 3 without reusing any MILP machinery: coverage, cut
feasibility, root/boundary consistency, cycle-time budgets, dependence and
recurrence timing, and black-box resource limits. Every scheduler in the
library funnels its result through :func:`verify_schedule`, so a formulation
bug cannot silently ship a bogus QoR number.
"""

from __future__ import annotations

from ..errors import ScheduleVerificationError
from ..ir.types import OpKind
from ..scheduling.schedule import Schedule
from ..tech.delay import DelayModel
from ..tech.device import Device

__all__ = ["verify_schedule", "schedule_problems"]

_TOL = 1e-6


def schedule_problems(schedule: Schedule, device: Device) -> list[str]:
    """Return all constraint violations (empty list = valid)."""
    problems: list[str] = []
    graph = schedule.graph
    tcp = schedule.tcp
    ii = schedule.ii
    delay_model = DelayModel(device, graph)

    def impl_delay(nid: int) -> float:
        node = graph.node(nid)
        cut = schedule.cover.get(nid)
        if cut is None:
            return 0.0
        return delay_model.cut_delay(node, cut)

    def abs_start(nid: int) -> float:
        return schedule.cycle[nid] * tcp + schedule.start.get(nid, 0.0)

    # -- structural: everything scheduled -------------------------------
    for node in graph:
        if node.kind is OpKind.CONST:
            continue
        if node.nid not in schedule.cycle:
            problems.append(f"node {node.nid} is unscheduled")
    if problems:
        return problems

    # -- cover legality --------------------------------------------------
    covered: set[int] = set()
    for nid, cut in schedule.cover.items():
        node = graph.node(nid)
        if cut.root != nid:
            problems.append(f"cover[{nid}] is a cut of node {cut.root}")
            continue
        covered.add(nid)
        covered.update(cut.interior)
        if node.is_mappable and not cut.is_unit and not cut.feasible(device.k):
            problems.append(
                f"root {nid} selected an infeasible non-unit cut "
                f"(support {cut.max_support} > K={device.k})"
            )
        for u in cut.boundary:
            un = graph.node(u)
            if un.kind in (OpKind.CONST, OpKind.INPUT):
                continue
            if u not in schedule.cover:
                problems.append(
                    f"cut input {u} of root {nid} is not itself a root"
                )
    for node in graph:
        if not node.is_mappable:
            continue
        if node.nid not in covered:
            problems.append(f"operation {node.nid} is not covered by any cone")

    # -- interior nodes execute at their root's time ----------------------
    for nid, cut in schedule.cover.items():
        for w in cut.interior:
            if w not in schedule.cycle:
                continue
            if schedule.cycle[w] != schedule.cycle[nid] or \
                    abs(schedule.start.get(w, 0.0)
                        - schedule.start.get(nid, 0.0)) > 1e-4:
                problems.append(
                    f"interior node {w} not co-timed with root {nid}"
                )

    # -- cycle-time budget (Eq. 8) ----------------------------------------
    for nid in schedule.cover:
        lv = schedule.start.get(nid, 0.0)
        d = impl_delay(nid)
        if lv + d > tcp + _TOL:
            problems.append(
                f"root {nid}: start {lv:.3f} + delay {d:.3f} exceeds "
                f"Tcp {tcp:.3f}"
            )

    # -- chaining across cut entries (Eq. 9) -------------------------------
    for nid, cut in schedule.cover.items():
        for u, dist in cut.entries:
            un = graph.node(u)
            if un.kind is OpKind.CONST:
                continue
            u_finish = abs_start(u) + impl_delay(u)
            v_start = abs_start(nid) + tcp * ii * dist
            if u_finish > v_start + _TOL:
                problems.append(
                    f"entry {u}@{dist} of root {nid} finishes at "
                    f"{u_finish:.3f} after the cone starts at {v_start:.3f}"
                )

    # -- dependence distances (Eq. 7) ---------------------------------------
    for node in graph:
        if node.kind is OpKind.CONST:
            continue
        for op in node.operands:
            if graph.node(op.source).kind is OpKind.CONST:
                continue
            if schedule.cycle[op.source] > schedule.cycle[node.nid] \
                    + ii * op.distance:
                problems.append(
                    f"dependence {op.source} -> {node.nid} "
                    f"(distance {op.distance}) violated"
                )

    # -- black-box resources (Eq. 14) ----------------------------------------
    usage: dict[tuple[str, int], int] = {}
    for node in graph:
        if node.is_blackbox and node.rclass:
            slot = schedule.cycle[node.nid] % ii
            usage[(node.rclass, slot)] = usage.get((node.rclass, slot), 0) + 1
    for (rclass, slot), used in usage.items():
        cap = device.blackbox_counts.get(rclass)
        if cap is not None and used > cap:
            problems.append(
                f"resource {rclass}: {used} ops in modulo slot {slot} "
                f"but only {cap} available"
            )

    return problems


def verify_schedule(schedule: Schedule, device: Device) -> Schedule:
    """Raise :class:`ScheduleVerificationError` on any violation."""
    problems = schedule_problems(schedule, device)
    if problems:
        raise ScheduleVerificationError(problems)
    return schedule

"""Vectorization escape hatch.

The packed-bitmask and numpy presolve/BnB kernels (docs/performance.md,
"Vectorized kernels") are byte-identical to the pure-Python reference
implementations, so the switch exists only as a safety valve and for the
differential parity suite: ``REPRO_VECTORIZE=0`` routes every hot path back
through the dict/set reference code.

Resolution order: an explicit ``vectorize=`` argument (e.g. from
:class:`~repro.core.config.SchedulerConfig`) wins; otherwise the
``REPRO_VECTORIZE`` environment variable decides, defaulting to *on*. The
environment is consulted at call time, not import time, so tests can toggle
it with ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

__all__ = ["vectorize_enabled"]

_FALSE = frozenset({"0", "false", "no", "off", ""})


def vectorize_enabled(explicit: bool | None = None) -> bool:
    """True iff the vectorized kernels should run.

    ``explicit`` overrides the environment when not ``None``. The choice
    never changes any schedule, cut cover, cost, fingerprint, or cache key —
    both paths produce byte-identical results (enforced by
    tests/test_vectorize.py).
    """
    if explicit is not None:
        return bool(explicit)
    return os.environ.get("REPRO_VECTORIZE", "1").strip().lower() not in _FALSE

"""Hardware cost model — the library's stand-in for "post place & route".

Given a :class:`~repro.scheduling.Schedule` *with a cover*, computes the
three quantities Table 1 reports:

* **LUT** — sum of per-root LUT counts (same
  :class:`~repro.tech.AreaModel` for every flow, so comparisons are fair);
* **FF** — register bits from value liveness (Eq. 13 semantics: a value
  occupies ``Bits(v)`` flip-flops for every cycle boundary it crosses,
  including loop-carried values and input staging);
* **CP** — achieved clock period: the longest recomputed combinational
  chain in any cycle, plus register setup and a deterministic congestion
  term standing in for P&R routing pressure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import SchedulingError
from ..ir.types import OpKind
from ..scheduling.schedule import Schedule
from ..tech.area import AreaModel
from ..tech.delay import DelayModel
from ..tech.device import Device

__all__ = ["HardwareReport", "evaluate"]


@dataclass
class HardwareReport:
    """Post-"P&R" quality-of-results summary for one flow on one design."""

    design: str
    method: str
    cp: float
    luts: int
    ffs: int
    latency: int
    ii: int
    solve_seconds: float = 0.0
    optimal: bool = True
    resource_usage: dict[str, int] = field(default_factory=dict)
    live_bits_by_cycle: dict[int, int] = field(default_factory=dict)

    def row(self) -> tuple:
        """(method, CP, LUT, FF) — the Table 1 tuple."""
        return (self.method, round(self.cp, 2), self.luts, self.ffs)

    def to_dict(self) -> dict:
        """JSON-safe dict (flow-cache storage)."""
        import dataclasses

        data = dataclasses.asdict(self)
        data["live_bits_by_cycle"] = {
            str(k): v for k, v in sorted(self.live_bits_by_cycle.items())
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "HardwareReport":
        data = dict(data)
        data["live_bits_by_cycle"] = {
            int(k): int(v)
            for k, v in data.get("live_bits_by_cycle", {}).items()
        }
        return cls(**data)


def _consumption_cycles(schedule: Schedule) -> dict[int, list[int]]:
    """For each produced value: the cycles at which consumers read it."""
    graph = schedule.graph
    ii = schedule.ii
    reads: dict[int, list[int]] = {}
    for nid, cut in schedule.cover.items():
        node = graph.node(nid)
        if node.kind is OpKind.INPUT:
            continue
        for u, dist in cut.entries:
            if graph.node(u).kind is OpKind.CONST:
                continue
            reads.setdefault(u, []).append(schedule.cycle[nid] + ii * dist)
    return reads


def _liveness_ffs(schedule: Schedule, area: AreaModel) -> tuple[int, dict[int, int]]:
    graph = schedule.graph
    total = 0
    by_cycle: dict[int, int] = {}
    for u, read_cycles in _consumption_cycles(schedule).items():
        node = graph.node(u)
        if node.kind is OpKind.OUTPUT:
            continue
        born = schedule.cycle.get(u, 0)
        last = max(read_cycles)
        bits = area.register_bits(node)
        for t in range(born, last):
            total += bits
            by_cycle[t] = by_cycle.get(t, 0) + bits
    return total, by_cycle


def _critical_path(schedule: Schedule, delay: DelayModel) -> float:
    """Recompute the worst per-cycle combinational chain over roots."""
    graph = schedule.graph
    ii = schedule.ii
    finish: dict[int, float] = {}

    def finish_of(nid: int, stack: tuple = ()) -> float:
        if nid in finish:
            return finish[nid]
        if nid in stack:
            raise SchedulingError(
                f"combinational cycle through root {nid} in cover"
            )
        node = graph.node(nid)
        cut = schedule.cover.get(nid)
        if cut is None or node.kind in (OpKind.INPUT, OpKind.CONST):
            finish[nid] = 0.0
            return 0.0
        arrival = 0.0
        for u, dist in cut.entries:
            un = graph.node(u)
            if un.kind is OpKind.CONST:
                continue
            same_abs_cycle = (
                schedule.cycle.get(u, 0)
                == schedule.cycle[nid] + ii * dist
            )
            if same_abs_cycle:
                arrival = max(arrival, finish_of(u, stack + (nid,)))
        f = arrival + delay.cut_delay(node, cut)
        finish[nid] = f
        return f

    worst = 0.0
    for nid in schedule.cover:
        worst = max(worst, finish_of(nid))
    return worst


def evaluate(schedule: Schedule, device: Device,
             design: str | None = None) -> HardwareReport:
    """Produce the Table 1 quantities for a covered schedule."""
    if not schedule.cover:
        raise SchedulingError(
            "hardware evaluation needs a cover; run a mapper first"
        )
    graph = schedule.graph
    delay = DelayModel(device, graph)
    area = AreaModel(device, graph)

    luts = 0
    for nid, cut in schedule.cover.items():
        luts += area.cut_lut_cost(graph.node(nid), cut)

    ffs, by_cycle = _liveness_ffs(schedule, area)

    chain = _critical_path(schedule, delay)
    congestion = min(0.10, 0.015 * math.log2(1 + luts))
    cp = chain * (1.0 + congestion) + device.ff_setup

    usage: dict[str, int] = {}
    slot_usage: dict[tuple[str, int], int] = {}
    for node in graph:
        if node.is_blackbox and node.rclass:
            slot = schedule.cycle[node.nid] % schedule.ii
            key = (node.rclass, slot)
            slot_usage[key] = slot_usage.get(key, 0) + 1
    for (rclass, _), n in slot_usage.items():
        usage[rclass] = max(usage.get(rclass, 0), n)

    return HardwareReport(
        design=design or graph.name,
        method=schedule.method,
        cp=cp,
        luts=luts,
        ffs=ffs,
        latency=schedule.latency,
        ii=schedule.ii,
        solve_seconds=schedule.solve_seconds,
        optimal=schedule.optimal,
        resource_usage=usage,
        live_bits_by_cycle=by_cycle,
    )

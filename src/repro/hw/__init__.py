"""Hardware cost model: the library's post-"place & route" report."""

from .cost import HardwareReport, evaluate

__all__ = ["HardwareReport", "evaluate"]

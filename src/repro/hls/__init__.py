"""Commercial-HLS-tool proxy (heuristic additive-delay baseline flow)."""

from .report import ScheduleReport, back_annotate, make_report
from .tool import CommercialHLSProxy, HLSResult

__all__ = [
    "CommercialHLSProxy",
    "HLSResult",
    "ScheduleReport",
    "back_annotate",
    "make_report",
]

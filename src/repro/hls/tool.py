"""The commercial-HLS-tool proxy: the full traditional flow.

``schedule -> freeze registers -> map per stage``, with additive
pre-characterized delays at schedule time — the flow whose pessimism the
paper quantifies. The entry point mirrors how Table 1's "HLS Tool" rows are
produced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SchedulingError
from ..ir.graph import CDFG
from ..ir.validate import validate
from ..mapping.stage_mapper import map_schedule
from ..scheduling.modulo import HeuristicModuloScheduler
from ..scheduling.schedule import Schedule
from ..tech.device import XC7, Device
from .report import ScheduleReport, make_report

__all__ = ["CommercialHLSProxy", "HLSResult"]


@dataclass
class HLSResult:
    """Output bundle of the baseline flow."""

    schedule: Schedule
    report: ScheduleReport


class CommercialHLSProxy:
    """Heuristic additive-delay pipeline synthesis (the "HLS Tool" rows)."""

    def __init__(self, graph: CDFG, device: Device = XC7,
                 tcp: float = 10.0) -> None:
        validate(graph)
        self.graph = graph
        self.device = device
        self.tcp = tcp

    def run(self, target_ii: int = 1) -> HLSResult:
        """Schedule (heuristic, additive), then map each stage to LUTs.

        The achieved II may exceed ``target_ii`` when the additive delay
        model cannot honor a recurrence — the commercial tool would emit the
        same larger II (this is one of the gaps mapping-awareness closes).
        """
        scheduler = HeuristicModuloScheduler(self.graph, self.device, self.tcp)
        schedule = scheduler.schedule(target_ii=target_ii)
        report = make_report(schedule, self.device)
        schedule = map_schedule(schedule, self.device)
        if not schedule.cover:
            raise SchedulingError("stage mapping produced an empty cover")
        return HLSResult(schedule=schedule, report=report)

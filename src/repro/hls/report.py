"""HLS schedule reports and delay back-annotation.

The paper's experimental setup parses operation delays out of the commercial
tool's schedule report and back-annotates them into the MILP ("we back
annotated delay values parsed from the schedule report of the HLS tool for
the black-box operations", Sec. 4). This module produces the equivalent
report from our proxy tool and applies it to a graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.graph import CDFG
from ..scheduling.schedule import Schedule
from ..tech.delay import DelayModel
from ..tech.device import Device

__all__ = ["ScheduleReport", "make_report", "back_annotate"]


@dataclass
class ScheduleReport:
    """A text-like schedule report: per-op delay, cycle and chain position."""

    design: str
    ii: int
    tcp: float
    latency: int
    op_delay: dict[int, float] = field(default_factory=dict)
    op_cycle: dict[int, int] = field(default_factory=dict)

    def render(self, graph: CDFG) -> str:
        """Human-readable report text (mimics vendor tooling output)."""
        lines = [
            f"== Schedule report: {self.design} ==",
            f"II = {self.ii}, target clock = {self.tcp:g} ns, "
            f"pipeline depth = {self.latency}",
        ]
        for nid in sorted(self.op_cycle):
            node = graph.node(nid)
            lines.append(
                f"  cycle {self.op_cycle[nid]:>2}  {node.label:<16} "
                f"delay {self.op_delay.get(nid, 0.0):.2f} ns"
            )
        return "\n".join(lines)


def make_report(schedule: Schedule, device: Device) -> ScheduleReport:
    """Build a report from a (possibly uncovered) schedule."""
    delay = DelayModel(device, schedule.graph)
    op_delay = {
        node.nid: delay.operator_delay(node)
        for node in schedule.graph
        if not node.is_boundary
    }
    return ScheduleReport(
        design=schedule.graph.name,
        ii=schedule.ii,
        tcp=schedule.tcp,
        latency=schedule.latency,
        op_delay=op_delay,
        op_cycle={nid: c for nid, c in schedule.cycle.items()},
    )


def back_annotate(graph: CDFG, report: ScheduleReport,
                  blackbox_only: bool = True) -> int:
    """Copy report delays onto graph nodes as ``delay_override``.

    With ``blackbox_only`` (the paper's setting) only black-box operations
    receive overrides; mapped logic keeps the device model. Returns the
    number of nodes annotated.
    """
    count = 0
    for nid, d in report.op_delay.items():
        if nid not in graph:
            continue
        node = graph.node(nid)
        if blackbox_only and not node.is_blackbox:
            continue
        node.delay_override = d
        count += 1
    return count

"""Abstract transfer functions for every opcode in ``ir/semantics.py``.

:func:`transfer` is the abstract counterpart of
:func:`repro.ir.semantics.eval_node`: given the :class:`Facts` of a node's
operands (at their *source* widths), it returns the Facts of the node's
value (at the node's declared width). The contract mirrors the concrete
semantics exactly — values are unsigned words, results are truncated to
the node width, signedness is applied locally where an operation requires
it — so soundness can be checked differentially against the simulator.

Width conventions follow :mod:`repro.bitdeps`: operand values live in
``[0, 2**source_width)`` (bits above a source's width are proven zero),
and consuming an operand at a different width is plain zero-extension or
truncation of the value.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import AnalysisError
from ...ir.node import Node
from ...ir.types import OpKind
from .domains import Facts, Interval, KnownBits, reduce_facts

__all__ = ["transfer"]


def _mask(width: int) -> int:
    return (1 << width) - 1


def _wrap_interval(lo: int, hi: int, width: int) -> Interval:
    """The interval of ``value mod 2**width`` for ``value`` in ``[lo, hi]``.

    Exact when the input range stays on one ``2**width`` page; otherwise
    the wrap splits the range and we return top (this domain does not
    represent wrapped intervals).
    """
    size = 1 << width
    if hi - lo >= size:
        return Interval.top(width)
    if lo // size == hi // size:
        return Interval(width, lo % size, hi % size)
    return Interval.top(width)


def _facts(bits: KnownBits, interval: Interval) -> Facts:
    return reduce_facts(bits, interval)


def _from_bits(bits: KnownBits) -> Facts:
    return _facts(bits, Interval.top(bits.width))


# ----------------------------------------------------------------------
# Known-bits kernels
# ----------------------------------------------------------------------

def _kb_not(a: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.zeros, a.unknown)


def _kb_add(a: KnownBits, b: KnownBits, carry_zero: bool,
            carry_one: bool) -> KnownBits:
    """Known bits of ``a + b + carry`` (mod ``2**width``).

    The ripple argument (after LLVM's ``KnownBits::computeForAddCarry``):
    the all-unknowns-high sum and all-unknowns-low sum bound the carry
    chain, and a result bit is known only where both operands and the
    incoming carry are known.
    """
    width = a.width
    m = _mask(width)
    possible_sum_one = a.min_value + b.min_value + (1 if carry_one else 0)
    possible_sum_zero = a.max_value + b.max_value + (0 if carry_zero else 1)
    carry_known_zero = ~(possible_sum_zero ^ a.zeros ^ b.zeros)
    carry_known_one = possible_sum_one ^ a.ones ^ b.ones
    known = (
        (a.zeros | a.ones) & (b.zeros | b.ones)
        & (carry_known_zero | carry_known_one)
    )
    ones = possible_sum_one & known & m
    zeros = ~possible_sum_zero & known & m
    return KnownBits(width, ones, m & ~(ones | zeros))


def _kb_trailing_zeros(a: KnownBits) -> int:
    """Number of low bits proven zero."""
    live = a.ones | a.unknown
    if live == 0:
        return a.width
    return (live & -live).bit_length() - 1


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------

def _bool_facts(width: int, outcome: int | None) -> Facts:
    """Facts for a 1-bit predicate held in a ``width``-bit node."""
    if outcome is not None:
        return Facts.const(outcome & 1, width)
    return Facts(KnownBits(width, 0, 1), Interval(width, 0, 1))


def _eq_outcome(a: Facts, b: Facts) -> int | None:
    ca, cb = a.constant_value, b.constant_value
    if ca is not None and cb is not None:
        return int(ca == cb)
    w = max(a.width, b.width)
    ba, bb = a.bits.resize(w), b.bits.resize(w)
    if (ba.ones & bb.zeros) or (bb.ones & ba.zeros):
        return 0  # some bit is known to differ
    if a.range.hi < b.range.lo or b.range.hi < a.range.lo:
        return 0  # ranges are disjoint
    return None


def _ult_outcome(a: Facts, b: Facts) -> int | None:
    if a.range.hi < b.range.lo:
        return 1
    if a.range.lo >= b.range.hi:
        return 0
    return None


def _slt_outcome(a: Facts, b: Facts) -> int | None:
    a_min, a_max = a.range.signed_bounds()
    b_min, b_max = b.range.signed_bounds()
    if a_max < b_min:
        return 1
    if a_min >= b_max:
        return 0
    return None


def _negate(outcome: int | None) -> int | None:
    return None if outcome is None else 1 - outcome


# ----------------------------------------------------------------------
# The transfer function
# ----------------------------------------------------------------------

def transfer(node: Node, args: Sequence[Facts]) -> Facts:
    """Abstract evaluation of ``node`` over its operands' :class:`Facts`.

    ``args[i]`` is the fact for operand ``i`` at its source's width.
    Returns the fact of the node's value at ``node.width``. Sound for
    every opcode the concrete semantics defines; LOAD goes to top (memory
    contents are unknown) and STORE abstracts its forwarded value.
    """
    kind = node.kind
    w = node.width
    m = _mask(w)

    if kind is OpKind.CONST:
        return Facts.const(int(node.value), w)
    if kind is OpKind.INPUT:
        return Facts.top(w)
    if kind in (OpKind.OUTPUT, OpKind.TRUNC, OpKind.ZEXT):
        return args[0].resize(w)
    if kind is OpKind.STORE:
        return args[1].resize(w)
    if kind is OpKind.LOAD:
        return Facts.top(w)

    if kind in (OpKind.AND, OpKind.OR, OpKind.XOR):
        a, b = args[0].resize(w), args[1].resize(w)
        ka, kb = a.bits, b.bits
        if kind is OpKind.AND:
            ones = ka.ones & kb.ones
            zeros = ka.zeros | kb.zeros
            interval = Interval(w, 0, min(a.range.hi, b.range.hi))
        elif kind is OpKind.OR:
            ones = ka.ones | kb.ones
            zeros = ka.zeros & kb.zeros
            interval = Interval(w, max(a.range.lo, b.range.lo), m)
        else:  # XOR
            known = (ka.ones | ka.zeros) & (kb.ones | kb.zeros)
            ones = (ka.ones ^ kb.ones) & known
            zeros = known & ~ones & m
            interval = Interval.top(w)
        return _facts(KnownBits(w, ones, m & ~(ones | zeros)), interval)

    if kind is OpKind.NOT:
        a = args[0].resize(w)
        bits = _kb_not(a.bits)
        interval = Interval(w, m - a.range.hi, m - a.range.lo)
        return _facts(bits, interval)

    if kind is OpKind.MUX:
        sel = args[0].bits.bit(0)
        if sel == 1:
            return args[1].resize(w)
        if sel == 0:
            return args[2].resize(w)
        return args[1].resize(w).join(args[2].resize(w))

    if kind is OpKind.SHL:
        a = args[0]
        bits = KnownBits(w, (a.bits.ones << node.amount) & m,
                         (a.bits.unknown << node.amount) & m)
        interval = _wrap_interval(a.range.lo << node.amount,
                                  a.range.hi << node.amount, w)
        return _facts(bits, interval)

    if kind in (OpKind.SHR, OpKind.SLICE):
        a = args[0]
        bits = KnownBits(w, (a.bits.ones >> node.amount) & m,
                         (a.bits.unknown >> node.amount) & m)
        interval = _wrap_interval(a.range.lo >> node.amount,
                                  a.range.hi >> node.amount, w)
        return _facts(bits, interval)

    if kind is OpKind.CONCAT:
        lo, hi = args[0], args[1]
        shift = lo.width  # the *source* width positions the high part
        bits = KnownBits(w, (lo.bits.ones | (hi.bits.ones << shift)) & m,
                         (lo.bits.unknown | (hi.bits.unknown << shift)) & m)
        interval = _wrap_interval(lo.range.lo + (hi.range.lo << shift),
                                  lo.range.hi + (hi.range.hi << shift), w)
        return _facts(bits, interval)

    if kind in (OpKind.ADD, OpKind.SUB, OpKind.NEG):
        if kind is OpKind.ADD:
            a, b = args[0].resize(w), args[1].resize(w)
            bits = _kb_add(a.bits, b.bits, carry_zero=True, carry_one=False)
            interval = _wrap_interval(a.range.lo + b.range.lo,
                                      a.range.hi + b.range.hi, w)
        else:
            if kind is OpKind.NEG:
                a, b = Facts.const(0, w), args[0].resize(w)
            else:
                a, b = args[0].resize(w), args[1].resize(w)
            # a - b  ==  a + ~b + 1 (two's complement).
            bits = _kb_add(a.bits, _kb_not(b.bits),
                           carry_zero=False, carry_one=True)
            interval = _wrap_interval(a.range.lo - b.range.hi,
                                      a.range.hi - b.range.lo, w)
        return _facts(bits, interval)

    if kind in (OpKind.EQ, OpKind.NE, OpKind.LT, OpKind.GE,
                OpKind.SLT, OpKind.SGE):
        a, b = args[0], args[1]
        if kind is OpKind.EQ:
            outcome = _eq_outcome(a, b)
        elif kind is OpKind.NE:
            outcome = _negate(_eq_outcome(a, b))
        elif kind is OpKind.LT:
            outcome = _ult_outcome(a, b)
        elif kind is OpKind.GE:
            outcome = _negate(_ult_outcome(a, b))
        elif kind is OpKind.SLT:
            outcome = _slt_outcome(a, b)
        else:  # SGE
            outcome = _negate(_slt_outcome(a, b))
        return _bool_facts(w, outcome)

    if kind in (OpKind.VSHL, OpKind.VSHR):
        a, amt = args[0], args[1]
        amt_const = amt.constant_value
        if amt_const is not None:
            s = min(amt_const, w)
            if kind is OpKind.VSHL:
                bits = KnownBits(w, (a.bits.ones << s) & m,
                                 (a.bits.unknown << s) & m)
                interval = _wrap_interval(a.range.lo << s, a.range.hi << s, w)
            else:
                bits = KnownBits(w, (a.bits.ones >> s) & m,
                                 (a.bits.unknown >> s) & m)
                interval = _wrap_interval(a.range.lo >> s, a.range.hi >> s, w)
            return _facts(bits, interval)
        if kind is OpKind.VSHR:
            # Shifting right never grows the value; the largest result
            # uses the smallest shift amount (capped at w by semantics).
            s_min = min(amt.range.lo, w)
            hi = a.range.hi >> s_min
            interval = _wrap_interval(0, hi, w)
            return _facts(KnownBits.top(w), interval)
        # VSHL: trailing zeros survive a left shift; the smallest
        # possible amount bounds the guaranteed run from below.
        tz = min(_kb_trailing_zeros(a.bits) + min(amt.range.lo, w), w)
        if a.constant_value == 0:
            return Facts.const(0, w)
        bits = KnownBits(w, 0, m & ~_mask(tz))
        return _from_bits(bits)

    if kind is OpKind.MUL:
        a, b = args[0], args[1]
        interval = _wrap_interval(a.range.lo * b.range.lo,
                                  a.range.hi * b.range.hi, w)
        tz = min(_kb_trailing_zeros(a.bits) + _kb_trailing_zeros(b.bits), w)
        bits = KnownBits(w, 0, m & ~_mask(tz))
        ca, cb = a.constant_value, b.constant_value
        if ca is not None and cb is not None:
            return Facts.const(ca * cb, w)
        return _facts(bits, interval)

    if kind in (OpKind.DIV, OpKind.MOD):
        a, b = args[0], args[1]
        # Division by zero raises in the concrete semantics — it produces
        # no value, so abstracting only the b >= 1 executions is sound.
        b_lo = max(b.range.lo, 1)
        b_hi = max(b.range.hi, 1)
        if kind is OpKind.DIV:
            interval = _wrap_interval(a.range.lo // b_hi,
                                      a.range.hi // b_lo, w)
        else:
            interval = _wrap_interval(0, min(a.range.hi, b_hi - 1), w)
        return _facts(KnownBits.top(w), interval)

    raise AnalysisError(
        f"no abstract transfer for {kind.value} node {node.nid}"
    )  # pragma: no cover - every OpKind is handled above

"""Abstract interpretation over CDFGs: known bits + intervals.

The engine proves per-node facts — which bits are pinned, what range a
value can take, which MUX arms are reachable — by running transfer
functions (abstract counterparts of :func:`repro.ir.semantics.eval_node`)
to a fixpoint over the graph, loop-carried edges included.

Consumers:

* the ``DF001``–``DF005`` lint rules (:mod:`.rules`),
* :func:`repro.ir.transforms.narrow_graph`, which shrinks widths and
  folds proven-constant structure before cut enumeration and MILP
  construction,
* anything that wants tighter width/value facts than syntax provides.

See ``docs/dataflow.md`` for the lattice, the transfer-function contract
and the differential soundness harness.
"""

from .domains import Facts, Interval, KnownBits, reduce_facts
from .engine import (
    DEFAULT_WIDEN_AFTER,
    DataflowResult,
    analyze,
    cached_analyze,
)
from .transfer import transfer

__all__ = [
    "DEFAULT_WIDEN_AFTER",
    "DataflowResult",
    "Facts",
    "Interval",
    "KnownBits",
    "analyze",
    "cached_analyze",
    "reduce_facts",
    "transfer",
]

"""DF-series diagnostics: findings proven by abstract interpretation.

These rules report *global* facts the per-op IR rules cannot see: a
syntactic check knows a MUX arm is dead only when the select is a literal
constant, while the dataflow engine proves it dead whenever the select's
bit is pinned by any chain of logic, intervals and recurrences. Every DF
finding is backed by a fact the differential harness
(``tests/test_dataflow.py``) validates against the concrete simulator.

All rules share one fixpoint per graph via
:func:`~repro.analysis.dataflow.engine.cached_analyze` and are gated on
acyclicity (the engine needs a topological order).
"""

from __future__ import annotations

from typing import Iterator

from ...bitdeps.dep import dep_bits
from ...errors import ValidationError
from ...ir.graph import CDFG
from ...ir.types import COMPARISON_KINDS, OpKind
from ..diagnostic import Diagnostic, Severity
from ..registry import GATE_ACYCLIC, AnalysisContext, finding, register
from .engine import DataflowResult, cached_analyze

__all__ = ["dataflow_for"]


def dataflow_for(ctx: AnalysisContext) -> DataflowResult | None:
    """The shared fact store for a lint run, or None when the graph is
    not analyzable (missing operand sources or a combinational cycle —
    IR001/IR006 territory, not ours)."""
    graph = ctx.graph
    for node in graph:
        for op in node.operands:
            if op.source not in graph:
                return None
    try:
        return cached_analyze(graph)
    except ValidationError:
        return None


def _syntactic_const_set(graph: CDFG) -> set[int]:
    """Nodes the purely syntactic rules (IR012) already call constant:
    CONST nodes and operations whose distance-0 operands are all in the
    set. DF rules report only facts *beyond* this."""
    is_const: set[int] = set()
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.kind is OpKind.CONST:
            is_const.add(nid)
            continue
        if node.is_boundary or node.is_blackbox or not node.operands:
            continue
        if all(op.distance == 0 and op.source in is_const
               for op in node.operands):
            is_const.add(nid)
    return is_const


def _structural_bits(graph: CDFG, node, bits: range) -> int:
    """How many of ``bits`` structurally depend on some input bit (per
    the DEP function). Black boxes are opaque: every bit counts."""
    if node.is_blackbox:
        return len(bits)
    count = 0
    for j in bits:
        if dep_bits(graph, node, j):
            count += 1
    return count


@register("DF001", "provably-dead-high-bits", "cdfg", Severity.WARNING,
          "High bits carry logic but are provably zero on every execution.",
          gate=GATE_ACYCLIC)
def provably_dead_high_bits(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    df = dataflow_for(ctx)
    if df is None:
        return
    graph = ctx.graph
    for node in graph:
        if node.is_boundary:
            continue
        if df.constant_value(node.nid) is not None:
            continue  # DF004/DF005 report whole-node constness
        dead = df.dead_high_bits(node.nid)
        if dead == 0:
            continue
        live_width = node.width - dead
        structural = _structural_bits(
            graph, node, range(live_width, node.width))
        if structural == 0:
            continue  # definitional zeros (zext/shift fill) — not news
        yield finding(
            f"node {node.nid} ({node.kind.value}): top {dead} of "
            f"{node.width} bits are provably zero on every execution",
            node=node.nid,
            hint=f"narrow_graph() shrinks this node to {live_width} bits, "
                 "cutting its Eq. 13/15 LUT/FF bit contribution",
        )


@register("DF002", "guaranteed-truncation", "cdfg", Severity.WARNING,
          "A narrowing assignment provably discards nonzero bits on every "
          "execution.", gate=GATE_ACYCLIC)
def guaranteed_truncation(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    df = dataflow_for(ctx)
    if df is None:
        return
    graph = ctx.graph
    for node in graph:
        if node.kind not in (OpKind.TRUNC, OpKind.OUTPUT):
            continue
        src = graph.node(node.operands[0].source)
        if node.width >= src.width:
            continue
        incoming = df.operand_fact(node.nid, 0)
        always_lost = (incoming.range.lo >= (1 << node.width)
                       or (incoming.bits.ones >> node.width) != 0)
        if always_lost:
            yield finding(
                f"node {node.nid} ({node.kind.value}) keeps {node.width} of "
                f"{src.width} bits but the discarded bits are provably "
                "nonzero on every execution",
                node=node.nid,
                edge=(src.nid, node.nid),
                hint="the value never fits the narrowed width; widen the "
                     "result or rescale the producer",
            )


@register("DF003", "statically-decided-mux", "cdfg", Severity.WARNING,
          "A MUX select is proven constant by dataflow, so one arm is "
          "unreachable.", gate=GATE_ACYCLIC)
def statically_decided_mux(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    df = dataflow_for(ctx)
    if df is None:
        return
    graph = ctx.graph
    for node in graph:
        if node.kind is not OpKind.MUX:
            continue
        sel_op = node.operands[0]
        sel = graph.node(sel_op.source)
        if sel.kind is OpKind.CONST and sel_op.distance == 0:
            continue  # syntactic constant — IR011 already reports it
        decided = df.mux_select(node.nid)
        if decided is None:
            continue
        dead_slot = 2 if decided else 1
        dead_src = node.operands[dead_slot].source
        yield finding(
            f"mux {node.nid} select (node {sel.nid}) is provably "
            f"{decided} on every execution: arm {dead_slot} "
            f"(node {dead_src}) is unreachable",
            node=node.nid,
            edge=(dead_src, node.nid),
            hint="narrow_graph() folds the mux to the live arm and lets "
                 "the dead cone be eliminated",
        )


@register("DF004", "dataflow-constant", "cdfg", Severity.WARNING,
          "An operation is proven constant by dataflow beyond syntactic "
          "folding.", gate=GATE_ACYCLIC)
def dataflow_constant(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    df = dataflow_for(ctx)
    if df is None:
        return
    graph = ctx.graph
    syntactic = _syntactic_const_set(graph)
    for node in graph:
        if node.is_boundary or node.kind in (OpKind.LOAD, OpKind.STORE):
            continue
        if node.kind in COMPARISON_KINDS:
            continue  # DF005 reports decided comparisons
        if node.nid in syntactic:
            continue  # IR012 already reports syntactically foldable logic
        value = df.constant_value(node.nid)
        if value is None:
            continue
        yield finding(
            f"node {node.nid} ({node.kind.value}) provably computes the "
            f"constant {value} on every execution",
            node=node.nid,
            hint="fold_constants cannot see this; narrow_graph() replaces "
                 "the node with a constant",
        )


@register("DF005", "decided-comparison", "cdfg", Severity.WARNING,
          "A comparison's outcome is refuted or forced by proven intervals.",
          gate=GATE_ACYCLIC)
def decided_comparison(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    df = dataflow_for(ctx)
    if df is None:
        return
    graph = ctx.graph
    syntactic = _syntactic_const_set(graph)
    for node in graph:
        if node.kind not in COMPARISON_KINDS or node.nid in syntactic:
            continue
        outcome = df.comparison_outcome(node.nid)
        if outcome is None:
            continue
        yield finding(
            f"comparison {node.nid} ({node.kind.value}) is always "
            f"{'true' if outcome else 'false'}: the proven operand ranges "
            "refute the other outcome",
            node=node.nid,
            hint="the guard never varies; drop it or fix the operand "
                 "ranges feeding it",
        )

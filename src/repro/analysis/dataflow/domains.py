"""Abstract domains for the CDFG dataflow engine.

Two composable domains over unsigned ``width``-bit words:

* :class:`KnownBits` — per-bit three-valued abstraction (known 0, known 1,
  unknown), the classic bit-level domain of LLVM's ``computeKnownBits``.
  A value is represented by two masks, ``ones`` (bits proven 1) and
  ``unknown`` (bits that may be either); every bit in neither mask is
  proven 0. Bits at or above ``width`` are always proven 0, mirroring the
  IR invariant that node values live in ``[0, 2**width)``.
* :class:`Interval` — an unsigned range ``[lo, hi]`` (both inclusive)
  within ``[0, 2**width)``. Signed queries derive a two's-complement range
  from the unsigned one (:meth:`Interval.signed_bounds`).

Both abstractions *over-approximate*: the concrete value set of a node is
always a subset of its abstract value's concretization. ``join`` computes
the least upper bound (set union, abstracted); ``widen`` jumps unstable
interval bounds to the extremes so loop-carried fixpoints terminate in a
bounded number of sweeps.

The reduced product of the two domains lives in :func:`reduce_facts`:
known bits tighten interval bounds and the common high prefix of an
interval's bounds yields known bits, so each domain sharpens the other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import AnalysisError

__all__ = ["KnownBits", "Interval", "Facts", "reduce_facts"]


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class KnownBits:
    """Per-bit 0/1/unknown facts for an unsigned ``width``-bit value.

    Invariants: ``ones & unknown == 0`` and both masks fit in ``width``
    bits. ``zeros`` (proven-0 bits) is the derived complement.
    """

    width: int
    ones: int
    unknown: int

    def __post_init__(self) -> None:
        if self.ones & self.unknown:
            raise AnalysisError(
                f"KnownBits invariant violated: ones={self.ones:#x} "
                f"overlaps unknown={self.unknown:#x}"
            )
        if (self.ones | self.unknown) >> self.width:
            raise AnalysisError(
                f"KnownBits masks exceed width {self.width}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def top(cls, width: int) -> "KnownBits":
        """Nothing known (beyond the width bound)."""
        return cls(width, 0, _mask(width))

    @classmethod
    def const(cls, value: int, width: int) -> "KnownBits":
        """All bits known: the abstraction of a single value."""
        return cls(width, value & _mask(width), 0)

    # -- derived masks --------------------------------------------------
    @property
    def zeros(self) -> int:
        """Bits proven 0 (within ``width``)."""
        return _mask(self.width) & ~(self.ones | self.unknown)

    @property
    def min_value(self) -> int:
        """Smallest concretizable value (all unknowns 0)."""
        return self.ones

    @property
    def max_value(self) -> int:
        """Largest concretizable value (all unknowns 1)."""
        return self.ones | self.unknown

    @property
    def is_constant(self) -> bool:
        return self.unknown == 0

    @property
    def value(self) -> int:
        """The single concrete value (only valid when :attr:`is_constant`)."""
        if not self.is_constant:
            raise AnalysisError("KnownBits.value on a non-constant")
        return self.ones

    def dead_high_bits(self) -> int:
        """Length of the run of proven-0 bits at the top of the word."""
        live = self.ones | self.unknown
        return self.width - live.bit_length()

    def bit(self, index: int) -> int | None:
        """0/1 when bit ``index`` is known, else None. Out-of-range bits
        are known 0 (values fit the width)."""
        if index >= self.width:
            return 0
        if (self.unknown >> index) & 1:
            return None
        return (self.ones >> index) & 1

    # -- lattice --------------------------------------------------------
    def join(self, other: "KnownBits") -> "KnownBits":
        """Least upper bound: keep only bits known identical in both."""
        if self.width != other.width:
            raise AnalysisError("KnownBits.join with mismatched widths")
        agreed_ones = self.ones & other.ones
        agreed_zeros = self.zeros & other.zeros
        unknown = _mask(self.width) & ~(agreed_ones | agreed_zeros)
        return KnownBits(self.width, agreed_ones, unknown)

    def resize(self, width: int) -> "KnownBits":
        """Reinterpret at another width (zero-extension semantics): growing
        adds proven-0 high bits, shrinking truncates the masks."""
        if width == self.width:
            return self
        m = _mask(width)
        return KnownBits(width, self.ones & m, self.unknown & m)

    def contains(self, value: int) -> bool:
        """True when ``value`` is in this abstraction's concretization."""
        if value < 0 or value >> self.width:
            return False
        return (value & self.ones) == self.ones and \
            (value & ~(self.ones | self.unknown)) == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = "".join(
            "?" if (self.unknown >> b) & 1 else str((self.ones >> b) & 1)
            for b in reversed(range(self.width))
        )
        return f"KnownBits({bits})"


@dataclass(frozen=True)
class Interval:
    """An unsigned range ``[lo, hi]`` of ``width``-bit values."""

    width: int
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 <= self.lo <= self.hi <= _mask(self.width):
            raise AnalysisError(
                f"Interval invariant violated: [{self.lo}, {self.hi}] "
                f"at width {self.width}"
            )

    # -- constructors ---------------------------------------------------
    @classmethod
    def top(cls, width: int) -> "Interval":
        return cls(width, 0, _mask(width))

    @classmethod
    def const(cls, value: int, width: int) -> "Interval":
        v = value & _mask(width)
        return cls(width, v, v)

    # -- queries --------------------------------------------------------
    @property
    def is_constant(self) -> bool:
        return self.lo == self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == 0 and self.hi == _mask(self.width)

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def signed_bounds(self) -> tuple[int, int]:
        """The two's-complement range covered by this unsigned interval.

        A range entirely below the sign boundary stays as-is; entirely at
        or above it shifts down by ``2**width``; straddling the boundary
        covers both extremes and widens to the full signed range reachable
        from the two segments.
        """
        half = 1 << (self.width - 1)
        full = 1 << self.width
        if self.hi < half:
            return self.lo, self.hi
        if self.lo >= half:
            return self.lo - full, self.hi - full
        # Straddles: negative segment [half, hi], positive segment
        # [lo, half - 1].
        return half - full, half - 1

    # -- lattice --------------------------------------------------------
    def join(self, other: "Interval") -> "Interval":
        if self.width != other.width:
            raise AnalysisError("Interval.join with mismatched widths")
        return Interval(self.width, min(self.lo, other.lo),
                        max(self.hi, other.hi))

    def widen(self, previous: "Interval") -> "Interval":
        """Jump any bound still moving since ``previous`` to its extreme."""
        lo = self.lo if self.lo >= previous.lo else 0
        hi = self.hi if self.hi <= previous.hi else _mask(self.width)
        return Interval(self.width, lo, hi)

    def resize(self, width: int) -> "Interval":
        """Reinterpret at another width (zero-extension semantics)."""
        if width == self.width:
            return self
        if width > self.width:
            return Interval(width, self.lo, self.hi)
        m = _mask(width)
        if self.hi <= m:
            return Interval(width, self.lo, self.hi)
        # Truncation may wrap distinct high parts onto the low bits.
        if self.hi - self.lo >= m + 1:
            return Interval.top(width)
        lo_t, hi_t = self.lo & m, self.hi & m
        if lo_t <= hi_t and (self.lo >> width) == (self.hi >> width):
            return Interval(width, lo_t, hi_t)
        return Interval.top(width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval[{self.lo}, {self.hi}]/u{self.width}"


@dataclass(frozen=True)
class Facts:
    """The reduced-product abstract value of one node: both domains."""

    bits: KnownBits
    range: Interval

    @property
    def width(self) -> int:
        return self.bits.width

    @classmethod
    def top(cls, width: int) -> "Facts":
        return cls(KnownBits.top(width), Interval.top(width))

    @classmethod
    def const(cls, value: int, width: int) -> "Facts":
        return cls(KnownBits.const(value, width),
                   Interval.const(value, width))

    @property
    def constant_value(self) -> int | None:
        """The proven constant, from either domain, else None."""
        if self.bits.is_constant:
            return self.bits.value
        if self.range.is_constant:
            return self.range.lo
        return None

    def join(self, other: "Facts") -> "Facts":
        return reduce_facts(self.bits.join(other.bits),
                            self.range.join(other.range))

    def resize(self, width: int) -> "Facts":
        return Facts(self.bits.resize(width), self.range.resize(width))

    def contains(self, value: int) -> bool:
        return self.bits.contains(value) and self.range.contains(value)


def _bits_from_interval(interval: Interval) -> KnownBits:
    """Known bits implied by an interval: the common high prefix of the two
    bounds is fixed across the whole range."""
    width = interval.width
    diff = interval.lo ^ interval.hi
    fixed_above = diff.bit_length()  # bits >= this index agree
    prefix_mask = _mask(width) & ~_mask(fixed_above)
    ones = interval.lo & prefix_mask
    unknown = _mask(width) & ~prefix_mask
    return KnownBits(width, ones, unknown)


def reduce_facts(bits: KnownBits, interval: Interval) -> Facts:
    """Mutually refine the two domains (one reduction round).

    Each domain over-approximates the same non-empty concrete value set,
    so their intersection still contains it: the interval is clipped to
    the known-bits min/max, and the interval's fixed high prefix adds
    known bits.
    """
    if bits.width != interval.width:
        raise AnalysisError("reduce_facts width mismatch")
    lo = max(interval.lo, bits.min_value)
    hi = min(interval.hi, bits.max_value)
    if lo > hi:
        # Only reachable through an unsound transfer; fail loudly rather
        # than silently producing an empty "fact".
        raise AnalysisError(
            f"reduced product is empty: bits={bits!r} range={interval!r}"
        )
    interval = Interval(interval.width, lo, hi)
    from_range = _bits_from_interval(interval)
    agreed_ones = bits.ones | from_range.ones
    agreed_zeros = bits.zeros | from_range.zeros
    if agreed_ones & agreed_zeros:
        raise AnalysisError(
            f"reduced product is contradictory: bits={bits!r} "
            f"range={interval!r}"
        )
    unknown = _mask(bits.width) & ~(agreed_ones | agreed_zeros)
    return Facts(KnownBits(bits.width, agreed_ones, unknown), interval)

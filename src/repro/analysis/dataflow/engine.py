"""Worklist fixpoint engine over CDFGs.

:func:`analyze` runs Kleene iteration from bottom: nodes are evaluated in
topological order over distance-0 edges, loop-carried (distance >= 1)
operands read the *join* of the recurrence's declared initial value and
the producer's fact from the previous sweep, and sweeps repeat until no
fact changes. Facts only ascend (each update joins with the previous
fact), the known-bits lattice has finite height, and interval bounds that
keep moving are widened to their extremes after ``widen_after`` updates —
so the iteration terminates in a small, bounded number of sweeps.

The resulting :class:`DataflowResult` is the fact store that DF rules,
:func:`repro.ir.transforms.narrow_graph` and downstream passes query:
per-node known bits and intervals, proven constants, dead high bits,
decided MUX selects and decided comparison outcomes.

Per-graph results are memoized on the CDFG itself (the cache is dropped
whenever the graph is structurally invalidated), so a linter run with
five DF rules pays for one fixpoint, not five.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...errors import AnalysisError
from ...ir.graph import CDFG
from ...ir.node import Node
from ...ir.semantics import mask
from ...ir.types import COMPARISON_KINDS, OpKind
from .domains import Facts
from .transfer import transfer

__all__ = ["DataflowResult", "analyze", "cached_analyze"]

#: Interval updates tolerated per node before bounds are widened.
DEFAULT_WIDEN_AFTER = 4

#: Hard sweep cap; on reaching it, still-unstable nodes go straight to
#: top (sound, and guarantees the next sweep is the last).
_SWEEP_CAP = 64


def _initial_fact(node: Node) -> Facts:
    """The abstraction of a recurrence's declared initial value, exactly
    as the functional simulator computes it."""
    return Facts.const(mask(int(node.attrs.get("initial", 0)), node.width),
                       node.width)


@dataclass
class DataflowResult:
    """Proven facts for every node of one CDFG, plus fixpoint statistics."""

    graph: CDFG
    facts: dict[int, Facts]
    sweeps: int = 0
    transfers: int = 0
    widened: set[int] = field(default_factory=set)

    # -- raw access -----------------------------------------------------
    def fact(self, nid: int) -> Facts:
        return self.facts[nid]

    def known_bits(self, nid: int):
        """The :class:`KnownBits` proven for node ``nid``."""
        return self.facts[nid].bits

    def interval(self, nid: int):
        """The unsigned :class:`Interval` proven for node ``nid``."""
        return self.facts[nid].range

    def operand_fact(self, nid: int, slot: int) -> Facts:
        """The fact for operand ``slot`` *as consumed* by ``nid``: for a
        loop-carried operand this joins the recurrence's initial value."""
        node = self.graph.node(nid)
        op = node.operands[slot]
        source = self.graph.node(op.source)
        fact = self.facts[op.source]
        if op.distance > 0:
            fact = fact.join(_initial_fact(source))
        return fact

    # -- derived queries ------------------------------------------------
    def constant_value(self, nid: int) -> int | None:
        """The proven compile-time constant of ``nid``, or None."""
        return self.facts[nid].constant_value

    def dead_high_bits(self, nid: int) -> int:
        """How many top bits of ``nid`` are proven zero on every execution."""
        return self.facts[nid].bits.dead_high_bits()

    def mux_select(self, nid: int) -> int | None:
        """The proven select value (bit 0) of a MUX node, or None."""
        node = self.graph.node(nid)
        if node.kind is not OpKind.MUX:
            raise AnalysisError(f"node {nid} is not a MUX")
        return self.operand_fact(nid, 0).bits.bit(0)

    def comparison_outcome(self, nid: int) -> int | None:
        """The proven outcome of a comparison node, or None."""
        node = self.graph.node(nid)
        if node.kind not in COMPARISON_KINDS:
            raise AnalysisError(f"node {nid} is not a comparison")
        value = self.facts[nid].constant_value
        return None if value is None else value & 1


def analyze(graph: CDFG, widen_after: int = DEFAULT_WIDEN_AFTER
            ) -> DataflowResult:
    """Run the fixpoint and return the fact store.

    Requires a well-formed graph whose distance-0 edges form a DAG
    (:class:`~repro.errors.ValidationError` propagates from the
    topological sort otherwise).
    """
    order = graph.topological_order()
    result = DataflowResult(graph, facts={})
    facts = result.facts
    updates: dict[int, int] = {}

    def in_fact(node: Node, slot: int) -> Facts:
        op = node.operands[slot]
        source = graph.node(op.source)
        if op.distance == 0:
            return facts[op.source]
        carried = facts.get(op.source)
        initial = _initial_fact(source)
        # First sweep may not have reached a forward recurrence source
        # yet; bottom join leaves just the initial value.
        return initial if carried is None else initial.join(carried)

    while True:
        result.sweeps += 1
        changed = False
        force_top = result.sweeps > _SWEEP_CAP
        for nid in order:
            node = graph.node(nid)
            args = [in_fact(node, slot) for slot in range(len(node.operands))]
            out = transfer(node, args)
            result.transfers += 1
            old = facts.get(nid)
            if old is not None:
                out = old.join(out)
                count = updates.get(nid, 0)
                if out != old:
                    updates[nid] = count + 1
                    if force_top:
                        out = Facts.top(node.width)
                        result.widened.add(nid)
                    elif updates[nid] > widen_after:
                        widened = out.range.widen(old.range)
                        if widened != out.range:
                            result.widened.add(nid)
                        out = Facts(out.bits, widened)
            if out != old:
                facts[nid] = out
                changed = True
        if not changed:
            break
    return result


def cached_analyze(graph: CDFG, widen_after: int = DEFAULT_WIDEN_AFTER
                   ) -> DataflowResult:
    """Memoized :func:`analyze`, keyed on the graph's structural identity.

    The cache lives on the CDFG and is cleared by every structural
    mutation (``CDFG._invalidate``), so results never outlive the graph
    shape they describe.
    """
    cache = getattr(graph, "_analysis_cache", None)
    if cache is None:
        cache = graph._analysis_cache = {}
    key = ("dataflow", widen_after)
    if key not in cache:
        cache[key] = analyze(graph, widen_after=widen_after)
    return cache[key]

"""The pass driver: configure rules, run them over an artifact, get a report.

A :class:`Linter` holds per-run configuration — selected/ignored codes,
severity overrides, sampling budgets — and exposes one entry point per
artifact kind (:meth:`lint_graph`, :meth:`lint_schedule`,
:meth:`lint_model`). Rules run in code order; a rule whose gate was broken
by an earlier rule (e.g. timing rules after an unscheduled node was found)
is skipped rather than allowed to crash on malformed input.

Module-level :func:`lint_graph` / :func:`lint_schedule` / :func:`lint_model`
run a default-configured linter for the common case.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Mapping

from .diagnostic import DiagnosticReport, Severity
from .registry import AnalysisContext, Rule, rules_for_target

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.graph import CDFG
    from ..milp.model import Model
    from ..scheduling.schedule import Schedule
    from ..tech.device import Device

__all__ = ["Linter", "lint_graph", "lint_schedule", "lint_model"]


def _matches(code: str, patterns: Iterable[str]) -> bool:
    """True when ``code`` equals or starts with any pattern (``IR`` selects
    every IR rule, ``IR006`` exactly one)."""
    return any(code == p or code.startswith(p) for p in patterns)


def _execution_order(rules: list[Rule]) -> list[Rule]:
    """Gate-establishing rules run before the rules they may gate off.

    The gate graph is a two-level chain (well-formedness, then acyclicity /
    scheduled-ness, then everything else), so a phase sort suffices; within
    a phase, code order keeps output deterministic.
    """

    def phase(rule: Rule) -> int:
        if rule.establishes is None:
            return 2
        return 0 if rule.gate is None else 1

    return sorted(rules, key=lambda r: (phase(r), r.code))


class Linter:
    """A configured analysis run.

    Parameters
    ----------
    select:
        If given, only rules whose code matches one of these codes/prefixes
        run (``["IR", "SCH003"]``).
    ignore:
        Rules whose code matches are skipped (applied after ``select``).
    severity_overrides:
        ``{"IR012": "error"}``-style per-code severity replacement.
    options:
        Tuning knobs passed to rules via the context (sampling budgets:
        ``dep_nodes``, ``dep_bit_samples``, ``dep_trials``,
        ``recurrence_cycle_cap``).
    """

    def __init__(self, select: Iterable[str] | None = None,
                 ignore: Iterable[str] | None = None,
                 severity_overrides: Mapping[str, "Severity | str"] | None = None,
                 options: Mapping[str, Any] | None = None) -> None:
        self.select = list(select) if select is not None else None
        self.ignore = list(ignore or ())
        self.severity_overrides = {
            code: Severity.parse(sev)
            for code, sev in (severity_overrides or {}).items()
        }
        self.options = dict(options or {})

    # ------------------------------------------------------------------
    def unmatched_patterns(self) -> list[str]:
        """Selector/ignore patterns that match no registered rule at all.

        ``--select IR1`` silently running nothing (prefixes match codes,
        not families) is a foot-gun: callers should treat a non-empty
        result as a configuration error (the CLI exits 2).
        """
        from .registry import all_rules

        codes = [rule.code for rule in all_rules()]
        return [p for p in (self.select or []) + self.ignore
                if not any(code == p or code.startswith(p) for code in codes)]

    def rules_for(self, target: str) -> list[Rule]:
        """The enabled rules for one artifact kind, in code order."""
        rules = rules_for_target(target)
        if self.select is not None:
            rules = [r for r in rules if _matches(r.code, self.select)]
        if self.ignore:
            rules = [r for r in rules if not _matches(r.code, self.ignore)]
        return rules

    def _run(self, target: str, ctx: AnalysisContext,
             subject: str) -> DiagnosticReport:
        report = DiagnosticReport(subject)
        broken_gates: set[str] = set()
        for rule in _execution_order(self.rules_for(target)):
            if rule.gate is not None and rule.gate in broken_gates:
                continue
            override = self.severity_overrides.get(rule.code)
            found = rule.run(ctx, severity=override)
            if found and rule.establishes:
                broken_gates.add(rule.establishes)
            for diag in found:
                report.add(_with_subject(diag, subject))
        return report

    # ------------------------------------------------------------------
    def lint_graph(self, graph: "CDFG",
                   device: "Device | None" = None) -> DiagnosticReport:
        """Run all CDFG rules over ``graph``."""
        ctx = AnalysisContext(graph=graph, device=device, options=self.options)
        return self._run("cdfg", ctx, subject=graph.name)

    def lint_schedule(self, schedule: "Schedule",
                      device: "Device") -> DiagnosticReport:
        """Run all schedule rules over ``schedule`` + its cover."""
        ctx = AnalysisContext(graph=schedule.graph, schedule=schedule,
                              device=device, options=self.options)
        return self._run("schedule", ctx,
                         subject=f"{schedule.graph.name}@{schedule.method}")

    def lint_model(self, model: "Model") -> DiagnosticReport:
        """Run all MILP rules over a built model."""
        ctx = AnalysisContext(model=model, options=self.options)
        return self._run("model", ctx, subject=model.name)


def _with_subject(diag, subject):
    """Stamp the analyzed subject onto a finding (kept out of rule bodies)."""
    if diag.subject == subject:
        return diag
    from dataclasses import replace

    return replace(diag, subject=subject)


# ----------------------------------------------------------------------
# Default-configured conveniences.
# ----------------------------------------------------------------------

def lint_graph(graph: "CDFG", device: "Device | None" = None,
               **linter_kwargs: Any) -> DiagnosticReport:
    """Lint a CDFG with a default :class:`Linter` (kwargs forwarded)."""
    return Linter(**linter_kwargs).lint_graph(graph, device=device)


def lint_schedule(schedule: "Schedule", device: "Device",
                  **linter_kwargs: Any) -> DiagnosticReport:
    """Lint a schedule + cover with a default :class:`Linter`."""
    return Linter(**linter_kwargs).lint_schedule(schedule, device)


def lint_model(model: "Model", **linter_kwargs: Any) -> DiagnosticReport:
    """Lint a built MILP model with a default :class:`Linter`."""
    return Linter(**linter_kwargs).lint_model(model)

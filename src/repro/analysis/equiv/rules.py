"""Translation-validation lint rules (codes ``EQ001``–``EQ006``).

These wrap :func:`~repro.analysis.equiv.validate.validate_flow` as
registered analysis rules so equivalence failures flow through the same
reporting machinery as every other diagnostic (text/JSON/SARIF renderers,
baselines, severity overrides, CI gates).

Symbolic validation is much more expensive than the other rules (it
unrolls miters and runs a SAT solver), so the whole family is **opt-in**:
every rule returns nothing unless the linter option ``equiv`` is truthy.
Budgets come from the options too (``equiv_frames``, ``equiv_induction_k``,
``equiv_sat_conflicts``), mirroring the ``repro equiv`` CLI flags.

Rule map:

* ``EQ001`` (cdfg, error) — the dataflow narrowing changed the design's
  input/output behaviour (confirmed miter counterexample).
* ``EQ002``/``EQ003``/``EQ004`` (schedule, error) — the cut cover / the
  pipelined replay / the emitted Verilog diverges from the scheduled
  graph's functional semantics.
* ``EQ005`` (schedule, warning) — a stage could not be *proved* within
  budget (bounded/unknown verdicts, machine errors). Not an error: the
  design may still be correct, the proof just did not close.
* ``EQ006`` (schedule, warning) — the emitted Verilog fell outside the
  structural parser's subset, so the RTL miter could not be built.

One :func:`validate_flow` run covers EQ002–EQ006 for a given schedule;
the report is memoized per schedule object (weakly, so lint runs do not
pin schedules in memory).
"""

from __future__ import annotations

import weakref
from typing import Iterator

from ..diagnostic import Diagnostic, Severity
from ..registry import (
    GATE_ACYCLIC,
    GATE_SCHEDULED,
    AnalysisContext,
    finding,
    register,
)
from .miter import EquivBudget
from .validate import EquivReport, StageVerdict, validate_flow

__all__ = ["equiv_budget_from_options"]


def equiv_budget_from_options(options) -> EquivBudget:
    """Build an :class:`EquivBudget` from linter options (CLI-compatible)."""
    budget = EquivBudget()
    if "equiv_frames" in options:
        budget.max_frames = int(options["equiv_frames"])
    if "equiv_induction_k" in options:
        budget.induction_k = int(options["equiv_induction_k"])
    if "equiv_sat_conflicts" in options:
        budget.sat_conflicts = int(options["equiv_sat_conflicts"])
    return budget


# Reports are memoized per artifact *object* so the three error rules and
# the two warning rules share one symbolic run. Keys are object ids with a
# weakref guard (schedules are unhashable, and a lint run must not extend
# any artifact's lifetime); the finalizer evicts entries on collection so
# a recycled id can never alias a dead artifact's report.
_GRAPH_REPORTS: dict[int, tuple] = {}
_SCHED_REPORTS: dict[int, tuple] = {}


def _memoized(store: dict, obj, compute) -> EquivReport:
    key = id(obj)
    entry = store.get(key)
    if entry is not None and entry[0]() is obj:
        return entry[1]
    report = compute()
    ref = weakref.ref(obj, lambda _ref, k=key: store.pop(k, None))
    store[key] = (ref, report)
    return report


def _narrow_report(ctx: AnalysisContext) -> EquivReport:
    return _memoized(
        _GRAPH_REPORTS, ctx.graph,
        lambda: validate_flow(
            ctx.graph, None, stages=("narrow",),
            budget=equiv_budget_from_options(ctx.options)))


def _schedule_report(ctx: AnalysisContext) -> EquivReport:
    return _memoized(
        _SCHED_REPORTS, ctx.schedule,
        lambda: validate_flow(
            ctx.schedule.graph, ctx.schedule,
            stages=("cover", "pipeline", "rtl"),
            budget=equiv_budget_from_options(ctx.options)))


def _cex_message(stage: str, verdict: StageVerdict) -> str:
    msg = f"{stage} stage is not semantics-preserving: {verdict.detail}"
    cex = verdict.counterexample
    if cex is not None and cex.stream:
        msg += f"; first diverging input frame: {cex.stream[0]}"
    for note in verdict.notes:
        msg += f" [{note}]"
    return msg


def _divergence(stage: str, verdict: StageVerdict | None,
                hint: str) -> Iterator[Diagnostic]:
    if verdict is not None and verdict.status == "inequivalent":
        yield finding(_cex_message(stage, verdict), hint=hint)


@register("EQ001", "narrow-changes-semantics", "cdfg", Severity.ERROR,
          "Dataflow narrowing changed the design's input/output behaviour "
          "(confirmed miter counterexample).", gate=GATE_ACYCLIC)
def narrow_changes_semantics(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.options.get("equiv"):
        return
    verdict = _narrow_report(ctx).verdict("narrow")
    yield from _divergence(
        "narrow", verdict,
        hint="replay the decoded counterexample through the functional "
             "simulator on both graphs; the narrowing dropped live bits "
             "or folded a non-constant")


@register("EQ002", "cover-changes-semantics", "schedule", Severity.ERROR,
          "The cut cover's wire semantics diverge from the scheduled "
          "graph (confirmed miter counterexample).", gate=GATE_SCHEDULED)
def cover_changes_semantics(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.options.get("equiv"):
        return
    yield from _divergence(
        "cover", _schedule_report(ctx).verdict("cover"),
        hint="a cut cone evaluates differently from the nodes it covers; "
             "check cut legality (interior co-timing, input completeness)")


@register("EQ003", "pipeline-changes-semantics", "schedule", Severity.ERROR,
          "The pipelined replay (staged registers at the scheduled "
          "distances) diverges from the graph semantics.",
          gate=GATE_SCHEDULED)
def pipeline_changes_semantics(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.options.get("equiv"):
        return
    yield from _divergence(
        "pipeline", _schedule_report(ctx).verdict("pipeline"),
        hint="staging depths disagree with the schedule's cycle/distance "
             "arithmetic, or the divergence sits in the pipeline fill "
             "window (see the attached note)")


@register("EQ004", "rtl-changes-semantics", "schedule", Severity.ERROR,
          "The emitted Verilog, re-parsed and interpreted under "
          "Verilog-2001 width rules, diverges from the graph semantics.",
          gate=GATE_SCHEDULED)
def rtl_changes_semantics(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.options.get("equiv"):
        return
    yield from _divergence(
        "rtl", _schedule_report(ctx).verdict("rtl"),
        hint="compare the emitter's expression against eval_node for the "
             "named wire; Verilog sizing/shift rules differ from the IR's")


@register("EQ005", "equivalence-unproved", "schedule", Severity.WARNING,
          "A stage equivalence proof did not close within budget "
          "(bounded/unknown verdict or a machine-model error).",
          gate=GATE_SCHEDULED)
def equivalence_unproved(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.options.get("equiv"):
        return
    for verdict in _schedule_report(ctx).stages:
        if verdict.status in ("bounded", "unknown"):
            yield finding(
                f"{verdict.stage} stage unproved: {verdict.detail}",
                hint="raise equiv_frames / equiv_induction_k / "
                     "equiv_sat_conflicts, or inspect the notes via "
                     "`repro equiv --format json`")
        elif verdict.status == "error" \
                and not verdict.detail.startswith("rtl-parse"):
            yield finding(
                f"{verdict.stage} stage could not be modeled: "
                f"{verdict.detail}",
                hint="the machine model rejected the artifact; this is a "
                     "modeling gap, not a proof of equivalence")


@register("EQ006", "rtl-outside-parser-subset", "schedule", Severity.WARNING,
          "The emitted Verilog fell outside the structural parser's "
          "subset, so the RTL miter could not be built.",
          gate=GATE_SCHEDULED)
def rtl_outside_parser_subset(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.options.get("equiv"):
        return
    verdict = _schedule_report(ctx).verdict("rtl")
    if verdict is not None and verdict.status == "error" \
            and verdict.detail.startswith("rtl-parse"):
        yield finding(
            f"emitted RTL not parseable: {verdict.detail}",
            hint="extend repro.rtl.parse alongside any emitter change; "
                 "an unparseable module is unvalidatable")

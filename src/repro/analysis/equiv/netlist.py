"""The RTL-stage machine: semantics of *parsed* emitted Verilog.

:class:`RtlMachine` is built from the text the emitter produced
(:func:`repro.rtl.parse.parse_module`), not from the schedule's
in-memory structures — the schedule is consulted only to *pair* the
netlist back to reference nodes (wire names carry node ids via
``_ident``) and to know each node's pipeline cycle. Everything
behavioral — expression evaluation with Verilog-2001 context sizing,
register chains with their textual reset values, behavioral memories —
comes from the parse tree, so printing bugs, wrong staging references
and bad initializers are modeled faithfully and show up as miter
counterexamples.

Width semantics implemented (the subset the emitter can produce):
operands of arithmetic/bitwise/unary operators stretch to the context
width (the max of the assignment LHS and every context-determined
operand's self width); shift amounts, comparison operands, ternary
conditions and concat parts are self-determined; comparisons yield one
bit; ``$signed`` pairs compare sign-extended at the max operand width.
"""

from __future__ import annotations

from ...ir.types import OpKind
from ...rtl.parse import (
    Binary, Concat, ContAssign, Expr, Index, Num, Part, Ref, Signed,
    Ternary, Unary, VerilogModule,
)
from ...rtl.verilog import _ident
from ...scheduling.schedule import Schedule
from .aig import AIG, FALSE, TRUE, lit_not
from .encode import BitVec, adjust, const_bits
from .machines import (
    FrameContext, FrameResult, MachineError, StateElem, _input_name,
    _output_name,
)

__all__ = ["RtlMachine"]

_UNSIZED_WIDTH = 32  # Verilog unsized decimal literals


class RtlMachine:
    """Cycle-indexed machine over a parsed emitted module."""

    kind = "rtl"

    def __init__(self, module: VerilogModule, schedule: Schedule) -> None:
        self.module = module
        self.schedule = schedule
        self.graph = schedule.graph
        self._wires = {w.name: w for w in module.wires}
        self._mems = {m.name: m for m in module.memories}
        self._ident_nid = {_ident(n): n.nid for n in self.graph}
        self._port_width = {p.name: p.width for p in module.ports}
        self._inputs, self._input_ports = self._map_inputs()
        self._chains = self._resolve_chains()
        self._warm_width = next(
            (r.width for r in self.module.regs if r.name == "warm_sr"), 0)
        self._check_valid_protocol()
        self._outputs, self._out_exprs = self._map_outputs()
        self._state = self._build_state()

    # -- structural resolution -------------------------------------------
    def _cycle(self, nid: int) -> int:
        return int(self.schedule.cycle.get(nid, 0))

    def _nid_of(self, name: str) -> int:
        nid = self._ident_nid.get(name)
        if nid is None:
            raise MachineError(f"identifier {name!r} maps to no graph node")
        return nid

    def _map_inputs(self) -> tuple[list[tuple[str, int]], dict[str, str]]:
        """Machine inputs (functional names) + port-name → input-name."""
        inputs: list[tuple[str, int]] = []
        by_port: dict[str, str] = {}
        graph_inputs = {_ident(n): n for n in self.graph.inputs}
        for port in self.module.ports:
            if port.direction != "input" or port.name in ("clk", "in_valid"):
                continue
            node = graph_inputs.pop(port.name, None)
            if node is None:
                raise MachineError(
                    f"input port {port.name!r} matches no graph INPUT")
            if port.width != node.width:
                raise MachineError(
                    f"input port {port.name!r} is {port.width} bits, "
                    f"graph input is {node.width}")
            inputs.append((_input_name(node), node.width))
            by_port[port.name] = _input_name(node)
        if graph_inputs:
            missing = ", ".join(sorted(graph_inputs))
            raise MachineError(f"graph inputs missing from ports: {missing}")
        return inputs, by_port

    def _resolve_chains(self) -> dict[str, tuple[str, int, int]]:
        """reg name → (base identifier, depth, init) by following updates.

        The base identifier is a wire or an input port; every register in
        the chain must agree on width and reset value, which is what
        makes one :class:`StateElem` a faithful model of the chain.
        """
        regs = {r.name: r for r in self.module.regs}
        updates: dict[str, Expr] = {}
        for upd in self.module.updates:
            if upd.target in updates:
                raise MachineError(f"register {upd.target!r} written twice")
            updates[upd.target] = upd.expr
        chains: dict[str, tuple[str, int, int]] = {}

        def resolve(name: str, trail: tuple[str, ...]) -> tuple[str, int, int]:
            if name in chains:
                return chains[name]
            if name in trail:
                raise MachineError(f"register cycle through {name!r}")
            reg = regs[name]
            expr = updates.get(name)
            if not isinstance(expr, Ref):
                raise MachineError(
                    f"register {name!r} is not a simple chain stage")
            prev = expr.name
            if prev in self._wires or prev in self._input_ports:
                chains[name] = (prev, 1, reg.init)
                return chains[name]
            if prev not in regs:
                raise MachineError(
                    f"register {name!r} chains from unknown {prev!r}")
            base, depth, init = resolve(prev, trail + (name,))
            if regs[prev].width != reg.width:
                raise MachineError(
                    f"register chain {name!r} changes width "
                    f"({regs[prev].width} -> {reg.width})")
            if init != reg.init:
                raise MachineError(
                    f"register chain {name!r} changes reset value")
            chains[name] = (base, depth + 1, reg.init)
            return chains[name]

        for name in regs:
            if name in ("valid_sr", "warm_sr"):
                continue
            resolve(name, ())
        return chains

    def _check_valid_protocol(self) -> None:
        latency = max(int(self.schedule.latency) - 1, 0)
        for assign in self.module.assigns:
            if assign.target != "out_valid":
                continue
            expr = assign.expr
            if (isinstance(expr, Index) and expr.name == "valid_sr"
                    and isinstance(expr.index, Num)
                    and expr.index.value == latency):
                return
            raise MachineError(
                f"out_valid taps {expr!r}, expected valid_sr[{latency}]")
        raise MachineError("module never assigns out_valid")

    def _map_outputs(self) -> tuple[list[tuple[str, int, int]],
                                    dict[str, Expr]]:
        outs: list[tuple[str, int, int]] = []
        exprs: dict[str, Expr] = {}
        assigns = {a.target: a.expr for a in self.module.assigns}
        for node in self.graph.outputs:
            port_name = _ident(node)
            if port_name not in self._port_width:
                raise MachineError(f"no output port for {port_name!r}")
            expr = assigns.get(port_name)
            if expr is None:
                raise MachineError(f"output {port_name!r} never assigned")
            offset = 0
            ref = expr
            if (isinstance(ref, Ternary) and isinstance(ref.cond, Index)
                    and ref.cond.name == "warm_sr"
                    and isinstance(ref.if_true, Ref)):
                ref = ref.if_true  # warm-gated tap: stage like the bare ref
            if isinstance(ref, Ref):
                base, depth = self._ident_base(ref.name)
                offset = self._cycle(self._nid_of(base)) + depth
            exprs[_output_name(node)] = expr
            outs.append((_output_name(node), node.width, offset))
        return outs, exprs

    def _ident_base(self, name: str) -> tuple[str, int]:
        """Resolve ``name`` to (base wire/port identifier, register depth)."""
        if name in self._wires or name in self._input_ports:
            return name, 0
        chain = self._chains.get(name)
        if chain is None:
            raise MachineError(f"unknown identifier {name!r}")
        return chain[0], chain[1]

    def _build_state(self) -> list[StateElem]:
        depth_by_base: dict[str, int] = {}
        init_by_base: dict[str, int] = {}
        for base, depth, init in self._chains.values():
            depth_by_base[base] = max(depth_by_base.get(base, 0), depth)
            init_by_base[base] = init
        elems = []
        for base in sorted(depth_by_base):
            nid = self._nid_of(base)
            node = self.graph.node(nid)
            elems.append(StateElem(
                key=nid, width=node.width, depth=depth_by_base[base],
                initial=init_by_base[base], a_node=nid,
                a_shift=self._cycle(nid)))
        return elems

    # -- machine interface -----------------------------------------------
    @property
    def inputs(self) -> list[tuple[str, int]]:
        return list(self._inputs)

    @property
    def outputs(self) -> list[tuple[str, int, int]]:
        return list(self._outputs)

    @property
    def state(self) -> list[StateElem]:
        return self._state

    @property
    def max_offset(self) -> int:
        offs = [off for _, _, off in self._outputs]
        offs.extend(e.a_shift + e.depth for e in self._state)
        return max(offs, default=0)

    @property
    def warm_frames(self) -> int:
        """Clock frames before the emitter's warm_sr gate saturates."""
        return self._warm_width

    def eval_frame(self, fx: FrameContext) -> FrameResult:
        self._fx = fx
        self._values: dict[str, BitVec] = {}
        self._visiting: set[str] = set()
        if self._warm_width:
            # warm_sr shifts in ones: bit k is high iff clock > k. In
            # induction mode the window sits arbitrarily late, so the
            # gate is saturated.
            self._values["warm_sr"] = [
                TRUE if (fx.steady or fx.frame > k) else FALSE
                for k in range(self._warm_width)]
        result = FrameResult()
        for port_name, input_name in self._input_ports.items():
            bits = adjust(fx.aig, fx.input(input_name),
                          self._port_width[port_name])
            self._values[port_name] = bits
            result.writes[self._nid_of(port_name)] = bits
        for wire in self.module.wires:
            self._demand(wire.name)
        for wire in self.module.wires:
            result.writes[self._nid_of(wire.name)] = self._values[wire.name]
        self._run_mem_writes(fx)
        for name, width, _off in self._outputs:
            result.outputs[name] = self._eval(self._out_exprs[name], width)
        return result

    # -- wire resolution -------------------------------------------------
    def _demand(self, name: str) -> BitVec:
        if name in self._values:
            return self._values[name]
        if name in self._visiting:
            raise MachineError(f"combinational cycle through wire {name!r}")
        self._visiting.add(name)
        try:
            wire = self._wires[name]
            mem_load = self._as_memory_load(wire)
            if mem_load is not None:
                bits = mem_load
            else:
                n = max(wire.width, self._self_width(wire.expr))
                bits = adjust(self._fx.aig, self._eval(wire.expr, n),
                              wire.width)
            self._values[name] = bits
        finally:
            self._visiting.discard(name)
        return bits

    def _as_memory_load(self, wire) -> BitVec | None:
        """``wire x = x_mem[addr];`` → uninterpreted LOAD pairing."""
        expr = wire.expr
        if not isinstance(expr, Index) or expr.name not in self._mems:
            return None
        nid = self._nid_of(wire.name)
        node = self.graph.node(nid)
        if node.kind is not OpKind.LOAD:
            raise MachineError(
                f"wire {wire.name!r} reads memory but node {nid} "
                f"is {node.kind.value}")
        addr_w = self._self_width(expr.index)
        addr = self._eval(expr.index, addr_w)
        return adjust(self._fx.aig, self._fx.blackbox(
            (nid, node.kind.value), self._fx.frame - self._cycle(nid),
            wire.width, [addr]), wire.width)

    def _run_mem_writes(self, fx: FrameContext) -> None:
        for write in self.module.mem_writes:
            base = write.mem
            if base.endswith("_mem"):
                base = base[: -len("_mem")]
            nid = self._nid_of(base)
            addr = self._eval(write.addr, self._self_width(write.addr))
            data = self._eval(write.data, self._self_width(write.data))
            fx.record_effect((nid, "store"), fx.frame - self._cycle(nid),
                             [addr, data])

    def _resolve_ident(self, name: str) -> BitVec:
        if name in self._values:
            return self._values[name]
        if name in self._wires:
            return self._demand(name)
        chain = self._chains.get(name)
        if chain is not None:
            base, depth, _init = chain
            return self._fx.read(self._nid_of(base), depth)
        raise MachineError(f"unknown identifier {name!r} in expression")

    # -- Verilog expression semantics ------------------------------------
    def _decl_width(self, name: str) -> int:
        if name in self._wires:
            return self._wires[name].width
        if name in self._port_width:
            return self._port_width[name]
        for reg in self.module.regs:
            if reg.name == name:
                return reg.width
        if name in self._mems:
            return self._mems[name].width
        raise MachineError(f"unknown identifier {name!r}")

    def _self_width(self, expr: Expr) -> int:
        if isinstance(expr, Num):
            return expr.width if expr.width is not None else _UNSIZED_WIDTH
        if isinstance(expr, Ref):
            return self._decl_width(expr.name)
        if isinstance(expr, Part):
            return expr.hi - expr.lo + 1
        if isinstance(expr, Index):
            if expr.name in self._mems:
                return self._mems[expr.name].width
            return 1
        if isinstance(expr, Concat):
            return sum(self._self_width(p) for p in expr.parts)
        if isinstance(expr, Unary):
            return self._self_width(expr.arg)
        if isinstance(expr, Signed):
            return self._self_width(expr.arg)
        if isinstance(expr, Ternary):
            return max(self._self_width(expr.if_true),
                       self._self_width(expr.if_false))
        if isinstance(expr, Binary):
            if expr.op in ("<<", ">>"):
                return self._self_width(expr.left)
            if expr.op in ("<", ">", "<=", ">=", "==", "!="):
                return 1
            return max(self._self_width(expr.left),
                       self._self_width(expr.right))
        raise MachineError(f"cannot size {expr!r}")

    def _eval(self, expr: Expr, n: int) -> BitVec:
        """Evaluate at context width ``n``; returns exactly ``n`` bits."""
        aig = self._fx.aig
        if isinstance(expr, Num):
            return const_bits(aig, expr.value, n)
        if isinstance(expr, Ref):
            return adjust(aig, self._resolve_ident(expr.name), n)
        if isinstance(expr, Part):
            bits = self._resolve_ident(expr.name)
            out = [bits[j] if j < len(bits) else FALSE
                   for j in range(expr.lo, expr.hi + 1)]
            return adjust(aig, out, n)
        if isinstance(expr, Index):
            if expr.name in self._mems:
                raise MachineError(
                    f"memory {expr.name!r} read outside a LOAD wire")
            bits = self._resolve_ident(expr.name)
            if not isinstance(expr.index, Num):
                raise MachineError("variable bit-select is out of subset")
            j = expr.index.value
            bit = bits[j] if j < len(bits) else FALSE
            return adjust(aig, [bit], n)
        if isinstance(expr, Concat):
            out: BitVec = []
            for part in reversed(expr.parts):  # listed MSB-first
                out.extend(self._eval(part, self._self_width(part)))
            return adjust(aig, out, n)
        if isinstance(expr, Unary):
            arg = self._eval(expr.arg, n)
            if expr.op == "~":
                return [lit_not(b) for b in arg]
            return self._ripple(const_bits(aig, 0, n),
                                [lit_not(b) for b in arg], True)
        if isinstance(expr, Signed):
            w = self._self_width(expr.arg)
            return self._sext(self._eval(expr.arg, w), n)
        if isinstance(expr, Ternary):
            cw = self._self_width(expr.cond)
            cond = aig.or_many(self._eval(expr.cond, cw))
            t = self._eval(expr.if_true, n)
            f = self._eval(expr.if_false, n)
            return [aig.mux(cond, tb, fb) for tb, fb in zip(t, f)]
        if isinstance(expr, Binary):
            return self._eval_binary(expr, n)
        raise MachineError(f"cannot evaluate {expr!r}")

    def _eval_binary(self, expr: Binary, n: int) -> BitVec:
        aig = self._fx.aig
        op = expr.op
        if op in ("&", "|", "^"):
            a = self._eval(expr.left, n)
            b = self._eval(expr.right, n)
            gate = {"&": aig.and_, "|": aig.or_, "^": aig.xor_}[op]
            return [gate(x, y) for x, y in zip(a, b)]
        if op == "+":
            return self._ripple(self._eval(expr.left, n),
                                self._eval(expr.right, n), False)
        if op == "-":
            b = self._eval(expr.right, n)
            return self._ripple(self._eval(expr.left, n),
                                [lit_not(x) for x in b], True)
        if op == "*":
            a = self._eval(expr.left, n)
            b = self._eval(expr.right, n)
            acc = const_bits(aig, 0, n)
            for j in range(n):
                partial = [aig.and_(b[j], x)
                           for x in ([FALSE] * j + a[: n - j])]
                acc = self._ripple(acc, partial, False)
            return acc
        if op in ("<<", ">>"):
            return self._eval_shift(expr, n)
        if op in ("<", ">", "<=", ">=", "==", "!="):
            return adjust(aig, [self._eval_compare(expr)], n)
        raise MachineError(f"operator {op!r} is out of subset (DIV/MOD "
                           "stay uninterpreted)")

    def _eval_shift(self, expr: Binary, n: int) -> BitVec:
        aig = self._fx.aig
        src = self._eval(expr.left, n)
        left = expr.op == "<<"
        if isinstance(expr.right, Num):
            s = expr.right.value
            return [src[j - s] if left and 0 <= j - s < n
                    else src[j + s] if not left and j + s < n
                    else FALSE for j in range(n)]
        amt_w = self._self_width(expr.right)
        amt = self._eval(expr.right, amt_w)

        def shifted(s: int) -> BitVec:
            out = []
            for j in range(n):
                k = j - s if left else j + s
                out.append(src[k] if 0 <= k < n else FALSE)
            return out

        acc = const_bits(aig, 0, n)
        for s in range(n):
            if s >= (1 << len(amt)):
                break
            eq = aig.and_many(
                amt[j] if (s >> j) & 1 else lit_not(amt[j])
                for j in range(len(amt)))
            term = shifted(s)
            acc = [aig.or_(acc[j], aig.and_(eq, term[j])) for j in range(n)]
        # Verilog: amounts >= n shift everything out.
        return acc

    def _eval_compare(self, expr: Binary) -> int:
        aig = self._fx.aig
        signed = isinstance(expr.left, Signed) and isinstance(expr.right,
                                                             Signed)
        la, ra = (expr.left.arg, expr.right.arg) if signed \
            else (expr.left, expr.right)
        m = max(self._self_width(la), self._self_width(ra), 1)
        if signed:
            a = self._sext(self._eval(la, self._self_width(la)), m)
            b = self._sext(self._eval(ra, self._self_width(ra)), m)
            a[m - 1] = lit_not(a[m - 1])
            b[m - 1] = lit_not(b[m - 1])
        else:
            a = self._eval(la, m)
            b = self._eval(ra, m)
        if expr.op in ("==", "!="):
            eq = aig.and_many(aig.xnor_(x, y) for x, y in zip(a, b))
            return eq if expr.op == "==" else lit_not(eq)
        lt = FALSE
        for j in range(m):
            bit_lt = aig.and_(lit_not(a[j]), b[j])
            bit_eq = aig.xnor_(a[j], b[j])
            lt = aig.or_(bit_lt, aig.and_(bit_eq, lt))
        if expr.op == "<":
            return lt
        if expr.op == ">=":
            return lit_not(lt)
        if expr.op == ">":
            return aig.and_(lit_not(lt),
                            lit_not(aig.and_many(
                                aig.xnor_(x, y) for x, y in zip(a, b))))
        # "<=": a <= b  ==  not (b < a); reuse via swapped operands.
        gt = FALSE
        for j in range(m):
            bit_gt = aig.and_(a[j], lit_not(b[j]))
            bit_eq = aig.xnor_(a[j], b[j])
            gt = aig.or_(bit_gt, aig.and_(bit_eq, gt))
        return lit_not(gt)

    def _ripple(self, a: BitVec, b: BitVec, carry_in: bool) -> BitVec:
        aig = self._fx.aig
        carry = aig.const(carry_in)
        out: BitVec = []
        for j in range(len(a)):
            axb = aig.xor_(a[j], b[j])
            out.append(aig.xor_(axb, carry))
            carry = aig.or_(aig.and_(a[j], b[j]), aig.and_(axb, carry))
        return out

    def _sext(self, bits: BitVec, width: int) -> BitVec:
        if not bits:
            return const_bits(self._fx.aig, 0, width)
        out = list(bits[:width])
        out.extend([bits[-1]] * (width - len(out)))
        return out

"""And-inverter graphs with structural hashing and light rewriting.

The AIG is the bit-level substrate of the equivalence engine: every
word-level CDFG operation is lowered to 2-input AND gates plus edge
inverters (:mod:`~repro.analysis.equiv.encode`), both sides of a miter are
built into *one* graph with shared input variables, and structural hashing
collapses everything the two sides have in common — which is the single
biggest lever for making the downstream SAT queries tractable.

Literals follow the AIGER convention: variable ``v`` has positive literal
``2*v`` and negative literal ``2*v + 1``; variable 0 is the constant, so
literal 0 is FALSE and literal 1 is TRUE.

:meth:`AIG.and_` applies, in order:

* constant propagation (``x & 0 = 0``, ``x & 1 = x``, ``x & x = x``,
  ``x & ~x = 0``);
* one- and two-level rewriting over the fanins of AND arguments
  (contradiction, subsumption, idempotence and resolution — e.g.
  ``(a & b) & ~a = 0``, ``(a & b) & a = a & b``, ``~(a & b) & a = a & ~b``,
  ``~(a & b) & ~(a & ~b) = ~a``);
* structural hashing on the normalized ``(min, max)`` fanin pair.

The class also evaluates itself concretely (:meth:`eval_many`) on 64
stimulus patterns at a time — used both for cheap counterexample hunting
before SAT and for confirming decoded SAT models.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["AIG", "FALSE", "TRUE", "lit_not", "lit_var", "lit_sign"]

FALSE = 0
TRUE = 1


def lit_not(lit: int) -> int:
    """The complement literal."""
    return lit ^ 1


def lit_var(lit: int) -> int:
    """The variable index of a literal."""
    return lit >> 1


def lit_sign(lit: int) -> bool:
    """True when the literal is complemented."""
    return bool(lit & 1)


class AIG:
    """A structurally hashed and-inverter graph.

    Attributes
    ----------
    fanins:
        ``fanins[v]`` is ``None`` for the constant and for inputs, and the
        normalized ``(lit_a, lit_b)`` pair for AND variables.
    inputs:
        Input variable indices in creation order.
    input_name:
        Optional debugging name per input variable.
    """

    def __init__(self) -> None:
        self.fanins: list[tuple[int, int] | None] = [None]  # var 0 = const
        self.inputs: list[int] = []
        self.input_name: dict[int, str] = {}
        self._strash: dict[tuple[int, int], int] = {}

    # -- construction ---------------------------------------------------
    def new_input(self, name: str | None = None) -> int:
        """Allocate a fresh input variable; returns its positive literal."""
        var = len(self.fanins)
        self.fanins.append(None)
        self.inputs.append(var)
        if name is not None:
            self.input_name[var] = name
        return 2 * var

    def const(self, value: bool) -> int:
        return TRUE if value else FALSE

    def _fanin_pair(self, lit: int) -> tuple[int, int] | None:
        """Fanins of ``lit``'s variable when it is an AND, else ``None``."""
        return self.fanins[lit >> 1]

    def and_(self, a: int, b: int) -> int:
        """AND of two literals with rewriting and structural hashing."""
        # Level-0: constants, idempotence, complement.
        if a == FALSE or b == FALSE or a == lit_not(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        rewritten = self._rewrite(a, b)
        if rewritten is not None:
            return rewritten
        if a > b:
            a, b = b, a
        key = (a, b)
        found = self._strash.get(key)
        if found is not None:
            return 2 * found
        var = len(self.fanins)
        self.fanins.append(key)
        self._strash[key] = var
        return 2 * var

    def _rewrite(self, a: int, b: int) -> int | None:
        """One- and two-level AND rewriting; ``None`` when no rule fires."""
        fa = self.fanins[a >> 1]
        fb = self.fanins[b >> 1]
        # One-level rules: one argument is (the complement of) an AND.
        for x, fx, y in ((a, fa, b), (b, fb, a)):
            if fx is None:
                continue
            x0, x1 = fx
            if not lit_sign(x):
                # x = x0 & x1
                if y == lit_not(x0) or y == lit_not(x1):
                    return FALSE            # contradiction
                if y == x0 or y == x1:
                    return x                # absorption: (x0&x1) & x0
            else:
                # x = ~(x0 & x1)
                if y == x0:
                    return self.and_(y, lit_not(x1))  # substitution
                if y == x1:
                    return self.and_(y, lit_not(x0))
                if y == lit_not(x0) or y == lit_not(x1):
                    return y                # subsumption: ~(x0&x1) & ~x0
        # Two-level rules between two AND fanins.
        if fa is not None and fb is not None:
            a0, a1 = fa
            b0, b1 = fb
            sa, sb = lit_sign(a), lit_sign(b)
            if not sa and not sb:
                # (a0&a1) & (b0&b1) with a shared complemented child.
                if a0 == lit_not(b0) or a0 == lit_not(b1) \
                        or a1 == lit_not(b0) or a1 == lit_not(b1):
                    return FALSE
            elif sa != sb:
                pos, neg = (a, b) if not sa else (b, a)
                p = self.fanins[pos >> 1]
                n = self.fanins[neg >> 1]
                assert p is not None and n is not None
                # (p0&p1) & ~(n0&n1): subsumed when {n0,n1} ⊆ {p0,p1}
                # complemented-wise the AND already covers it; the useful
                # rule is when the negative side shares one child and the
                # other child is complemented: (p0&p1) & ~(p0&~p1) = p0&p1.
                if (n[0] in p and lit_not(n[1]) in p) or \
                        (n[1] in p and lit_not(n[0]) in p):
                    return pos
            else:
                # ~(a0&a1) & ~(a0&~a1) = ~a0 (resolution).
                if a0 == b0 and a1 == lit_not(b1):
                    return lit_not(a0)
                if a1 == b1 and a0 == lit_not(b0):
                    return lit_not(a1)
                if a0 == b1 and a1 == lit_not(b0):
                    return lit_not(a0)
                if a1 == b0 and a0 == lit_not(b1):
                    return lit_not(a1)
        return None

    # -- derived gates --------------------------------------------------
    def or_(self, a: int, b: int) -> int:
        return lit_not(self.and_(lit_not(a), lit_not(b)))

    def xor_(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, lit_not(b)), self.and_(lit_not(a), b))

    def xnor_(self, a: int, b: int) -> int:
        return lit_not(self.xor_(a, b))

    def mux(self, sel: int, if_true: int, if_false: int) -> int:
        """``sel ? if_true : if_false``."""
        return self.or_(self.and_(sel, if_true),
                        self.and_(lit_not(sel), if_false))

    def and_many(self, lits: Iterable[int]) -> int:
        """Balanced conjunction of arbitrarily many literals."""
        work = [lit for lit in lits]
        if not work:
            return TRUE
        while len(work) > 1:
            nxt = [self.and_(work[i], work[i + 1])
                   for i in range(0, len(work) - 1, 2)]
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def or_many(self, lits: Iterable[int]) -> int:
        return lit_not(self.and_many(lit_not(lit) for lit in lits))

    # -- analysis -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.fanins)

    @property
    def num_ands(self) -> int:
        return len(self.fanins) - 1 - len(self.inputs)

    def cone_vars(self, roots: Sequence[int]) -> list[int]:
        """Variables in the transitive fanin of ``roots`` (topological,
        constant and inputs included), iteratively to survive deep cones."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(lit >> 1, False) for lit in roots]
        while stack:
            var, expanded = stack.pop()
            if expanded:
                order.append(var)
                continue
            if var in seen:
                continue
            seen.add(var)
            stack.append((var, True))
            pair = self.fanins[var]
            if pair is not None:
                stack.append((pair[0] >> 1, False))
                stack.append((pair[1] >> 1, False))
        return order

    def support(self, roots: Sequence[int]) -> list[int]:
        """Input variables the ``roots`` depend on."""
        return [v for v in self.cone_vars(roots)
                if self.fanins[v] is None and v != 0]

    # -- concrete evaluation --------------------------------------------
    def eval_many(self, assignment: dict[int, int],
                  roots: Sequence[int]) -> list[int]:
        """Evaluate ``roots`` under 64 parallel patterns.

        ``assignment`` maps input *variables* to 64-bit pattern words;
        unassigned inputs evaluate as all-zero. Returns one pattern word
        per root literal.
        """
        mask64 = (1 << 64) - 1
        values: dict[int, int] = {0: 0}
        for var in self.cone_vars(roots):
            if var in values:
                continue
            pair = self.fanins[var]
            if pair is None:
                values[var] = assignment.get(var, 0) & mask64
            else:
                a, b = pair
                va = values[a >> 1] ^ (mask64 if a & 1 else 0)
                vb = values[b >> 1] ^ (mask64 if b & 1 else 0)
                values[var] = va & vb
        out = []
        for lit in roots:
            word = values[lit >> 1]
            out.append((word ^ (mask64 if lit & 1 else 0)) & mask64)
        return out

    def eval_lit(self, assignment: dict[int, bool], lit: int) -> bool:
        """Single-pattern evaluation (inputs default to False)."""
        packed = {var: (1 if val else 0)
                  for var, val in assignment.items()}
        return bool(self.eval_many(packed, [lit])[0] & 1)

"""Word-level CDFG opcode encoders onto the AIG.

One function per concern: :func:`encode_node` lowers a single
:class:`~repro.ir.node.Node` to a bit vector (LSB-first list of AIG
literals) given already-encoded operand vectors, mirroring
:func:`repro.ir.semantics.eval_node` — the library's single source of
word-level truth — bit for bit. The construction mirrors
:mod:`repro.bitdeps.bitblast` where both exist (ripple carry adders,
borrow-chain comparators); the variable-shift barrel decoder and the
shift-add multiplier exist only here because bit-blasting refuses those
opcodes while the prover needs them.

Black-box operations with environment semantics (LOAD) or partial
semantics (DIV/MOD by zero) are *not* encoded: :func:`encode_node`
raises :class:`EncodeUnsupported` and the miter layer pairs the two
sides' instances through shared uninterpreted variables instead
(Ackermann-style, see :mod:`.machines`). STORE's value semantics (the
stored word) is exact and encoded here; its memory side effect is again
a pairing obligation.

Exhaustive ≤3-bit cross-checks against ``eval_node`` for every opcode
live in ``tests/test_equiv.py``.
"""

from __future__ import annotations

from typing import Sequence

from ...errors import ReproError
from ...ir.node import Node
from ...ir.semantics import mask
from ...ir.types import OpKind
from .aig import AIG, FALSE, TRUE, lit_not

__all__ = ["BitVec", "EncodeUnsupported", "const_bits", "adjust",
           "encode_node", "bits_to_int", "int_to_bools"]

#: A word as LSB-first AIG literals.
BitVec = list[int]

#: Opcodes the symbolic encoder refuses (paired as uninterpreted instead).
UNINTERPRETED_KINDS = frozenset({OpKind.LOAD, OpKind.DIV, OpKind.MOD})


class EncodeUnsupported(ReproError):
    """The opcode has no closed-form AIG encoding (memory/partial ops)."""


def const_bits(aig: AIG, value: int, width: int) -> BitVec:
    """The constant ``value`` as ``width`` literals."""
    value = mask(value, width)
    return [TRUE if (value >> j) & 1 else FALSE for j in range(width)]


def adjust(aig: AIG, bits: Sequence[int], width: int) -> BitVec:
    """Zero-extend or truncate to ``width`` (the ubiquitous ``mask``)."""
    out = list(bits[:width])
    out.extend([FALSE] * (width - len(out)))
    return out


def bits_to_int(bit_values: Sequence[int]) -> int:
    """Pack concrete 0/1 values (LSB first) into an int."""
    word = 0
    for j, bit in enumerate(bit_values):
        if bit:
            word |= 1 << j
    return word


def int_to_bools(value: int, width: int) -> list[bool]:
    return [bool((value >> j) & 1) for j in range(width)]


# ----------------------------------------------------------------------
# Arithmetic helpers (ripple structures, shared by several opcodes).
# ----------------------------------------------------------------------

def _ripple_add(aig: AIG, a: BitVec, b: BitVec, carry: int) -> BitVec:
    """``a + b + carry`` over ``len(a)`` bits (full-adder chain)."""
    out: BitVec = []
    for j in range(len(a)):
        axb = aig.xor_(a[j], b[j])
        out.append(aig.xor_(axb, carry))
        carry = aig.or_(aig.and_(a[j], b[j]), aig.and_(axb, carry))
    return out


def _less_than(aig: AIG, a: BitVec, b: BitVec) -> int:
    """Unsigned ``a < b`` over equal-length vectors (LSB-first chain)."""
    lt = FALSE
    for j in range(len(a)):
        bit_lt = aig.and_(lit_not(a[j]), b[j])
        bit_eq = aig.xnor_(a[j], b[j])
        lt = aig.or_(bit_lt, aig.and_(bit_eq, lt))
    return lt


def _equals_const(aig: AIG, bits: BitVec, value: int) -> int:
    """``bits == value`` (value taken modulo the vector's range)."""
    if value >= (1 << len(bits)):
        return FALSE
    terms = []
    for j, bit in enumerate(bits):
        terms.append(bit if (value >> j) & 1 else lit_not(bit))
    return aig.and_many(terms)


def _sign_extend(aig: AIG, bits: BitVec, width: int) -> BitVec:
    """Sign-extend from the vector's own width (empty vectors stay zero)."""
    if not bits:
        return [FALSE] * width
    out = list(bits[:width])
    out.extend([bits[-1]] * (width - len(out)))
    return out


def _mux_word(aig: AIG, sel: int, if_true: BitVec, if_false: BitVec) -> BitVec:
    return [aig.mux(sel, t, f) for t, f in zip(if_true, if_false)]


# ----------------------------------------------------------------------
# The opcode dispatcher.
# ----------------------------------------------------------------------

def encode_node(aig: AIG, node: Node, args: Sequence[BitVec],
                widths: Sequence[int]) -> BitVec:
    """Lower one node; ``args[i]`` has exactly ``widths[i]`` literals.

    Returns ``node.width`` literals computing
    ``eval_node(node, args, widths)``. INPUT/CONST/LOAD/DIV/MOD are the
    caller's responsibility (fresh variables, constants, pairing).
    """
    kind = node.kind
    w = node.width

    if kind is OpKind.CONST:
        return const_bits(aig, int(node.value), w)
    if kind in (OpKind.OUTPUT, OpKind.TRUNC, OpKind.ZEXT):
        return adjust(aig, args[0], w)

    if kind is OpKind.AND:
        a, b = (adjust(aig, x, w) for x in args)
        return [aig.and_(a[j], b[j]) for j in range(w)]
    if kind is OpKind.OR:
        a, b = (adjust(aig, x, w) for x in args)
        return [aig.or_(a[j], b[j]) for j in range(w)]
    if kind is OpKind.XOR:
        a, b = (adjust(aig, x, w) for x in args)
        return [aig.xor_(a[j], b[j]) for j in range(w)]
    if kind is OpKind.NOT:
        a = adjust(aig, args[0], w)
        return [lit_not(a[j]) for j in range(w)]
    if kind is OpKind.MUX:
        sel = args[0][0] if args[0] else FALSE
        return _mux_word(aig, sel, adjust(aig, args[1], w),
                         adjust(aig, args[2], w))

    if kind in (OpKind.SHL, OpKind.SHR, OpKind.SLICE):
        amount = int(node.amount or 0)
        src = args[0]
        out: BitVec = []
        for j in range(w):
            k = j - amount if kind is OpKind.SHL else j + amount
            out.append(src[k] if 0 <= k < len(src) else FALSE)
        return out
    if kind is OpKind.CONCAT:
        lo, hi = args
        full = list(lo) + list(hi)
        return adjust(aig, full, w)

    if kind is OpKind.ADD:
        a, b = (adjust(aig, x, w) for x in args)
        return _ripple_add(aig, a, b, FALSE)
    if kind is OpKind.SUB:
        a, b = (adjust(aig, x, w) for x in args)
        return _ripple_add(aig, a, [lit_not(bit) for bit in b], TRUE)
    if kind is OpKind.NEG:
        a = adjust(aig, args[0], w)
        return _ripple_add(aig, [FALSE] * w, [lit_not(bit) for bit in a],
                           TRUE)

    if kind in (OpKind.EQ, OpKind.NE):
        n = max(widths[0], widths[1], 1)
        a, b = (adjust(aig, x, n) for x in args)
        eq = aig.and_many(aig.xnor_(a[j], b[j]) for j in range(n))
        bit = eq if kind is OpKind.EQ else lit_not(eq)
        return adjust(aig, [bit], w)
    if kind in (OpKind.LT, OpKind.GE):
        n = max(widths[0], widths[1], 1)
        a, b = (adjust(aig, x, n) for x in args)
        lt = _less_than(aig, a, b)
        bit = lt if kind is OpKind.LT else lit_not(lt)
        return adjust(aig, [bit], w)
    if kind in (OpKind.SLT, OpKind.SGE):
        n = max(widths[0], widths[1], 1)
        a = _sign_extend(aig, list(args[0]), n)
        b = _sign_extend(aig, list(args[1]), n)
        # Flipping the sign bit maps two's-complement order onto the
        # unsigned order (offset-binary trick).
        a[n - 1] = lit_not(a[n - 1])
        b[n - 1] = lit_not(b[n - 1])
        lt = _less_than(aig, a, b)
        bit = lt if kind is OpKind.SLT else lit_not(lt)
        return adjust(aig, [bit], w)

    if kind in (OpKind.VSHL, OpKind.VSHR):
        return _barrel_shift(aig, node, args, w)

    if kind is OpKind.MUL:
        a = adjust(aig, args[0], w)
        b = list(args[1])
        acc = [FALSE] * w
        for j in range(min(len(b), w)):
            partial = _mux_word(
                aig, b[j],
                [FALSE] * j + a[: w - j],
                [FALSE] * w)
            acc = _ripple_add(aig, acc, partial, FALSE)
        return acc
    if kind is OpKind.STORE:
        # Value semantics only: a STORE evaluates to the stored word.
        return adjust(aig, args[1], w)

    raise EncodeUnsupported(
        f"node {node.nid}: {kind.value} has no closed-form AIG encoding")


def _barrel_shift(aig: AIG, node: Node, args: Sequence[BitVec],
                  w: int) -> BitVec:
    """VSHL/VSHR with the ``min(amount, width)`` clamp of ``eval_node``.

    A one-hot decode of the amount selects among ``w`` constant shifts;
    amounts ``>= w`` clamp to exactly ``w`` (zero for VSHL; a possibly
    non-zero residue for VSHR when the operand is wider than the node).
    """
    src = list(args[0])
    amt = list(args[1])
    left = node.kind is OpKind.VSHL

    def shifted(s: int) -> BitVec:
        out: BitVec = []
        for j in range(w):
            k = j - s if left else j + s
            out.append(src[k] if 0 <= k < len(src) else FALSE)
        return out

    any_small = FALSE
    acc = [FALSE] * w
    for s in range(w):
        if s >= (1 << len(amt)):
            break
        eq = _equals_const(aig, amt, s)
        any_small = aig.or_(any_small, eq)
        term = shifted(s)
        acc = [aig.or_(acc[j], aig.and_(eq, term[j])) for j in range(w)]
    # amount >= w: clamp to a shift of exactly w.
    clamp = shifted(w)
    ge_w = lit_not(any_small)
    return [aig.or_(acc[j], aig.and_(ge_w, clamp[j])) for j in range(w)]

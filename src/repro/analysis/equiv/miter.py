"""Pairing two machines into miters and discharging them.

:class:`PairInstance` unrolls a reference machine A (always the
iteration-indexed :class:`~.machines.GraphMachine` of the original CDFG)
against a stage machine B into one shared AIG, producing *goals* — bit
differences that must be unsatisfiable:

* output equality at aligned frames,
* per-state correspondence (B's carried/registered values track the
  reference node they claim to implement),
* Ackermann pairing of effectful ops (LOAD/DIV/MOD values may be shared
  only if their operands provably agree; STORE side effects must match).

Two modes share all of the encoding:

``bmc``
    Frames start from the concrete initial state (register/recurrence
    initials). A satisfiable goal here is a *real* divergence: the model
    decodes to a named input stream.

``induction``
    Pre-window history is replaced by fresh variables shared between the
    two sides through the stage correspondence (plus declared invariants
    such as narrowing's high-bits-zero), and goals are only asserted at
    the last frame — earlier frames' correspondence becomes an
    assumption, giving k-step induction over recurrences. UNSAT closes
    the proof for every reachable (indeed every corresponding) state; a
    satisfiable goal may start from an unreachable state and is *not*
    reported as a counterexample.

Each goal is discharged cheapest-first: structural (the miter literal
collapsed to FALSE), 64-way random simulation (assumption-aware), CDCL
SAT under a conflict budget, then a bounded BDD when the cone support is
small.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Mapping

from ...ir.graph import CDFG
from .aig import AIG, FALSE, lit_not
from .bdd import check_lit_bdd
from .encode import BitVec, adjust, bits_to_int, const_bits
from .machines import FrameContext, MachineError, StateElem
from .sat import solve_lit

__all__ = ["EquivBudget", "Goal", "PairInstance", "PairOutcome",
           "Invariant", "decode_stream"]


@dataclass
class EquivBudget:
    """Resource caps for one stage check (see ``docs/equivalence.md``)."""

    max_frames: int = 6          # BMC depth (iterations of the reference)
    induction_k: int = 2         # deepest induction window to try
    sat_conflicts: int = 30_000  # CDCL conflicts per miter
    bdd_nodes: int = 100_000     # BDD fallback node cap
    bdd_support: int = 40        # only fall back when support is this small
    sim_rounds: int = 8          # rounds of 64 random patterns per goal set
    max_aig_nodes: int = 2_000_000


@dataclass(frozen=True)
class Invariant:
    """A declared fact about a reference node's values (narrowing).

    ``kind == "zext"``: bits at and above ``param`` are zero.
    ``kind == "const"``: the value equals ``param``.
    """

    a_node: int
    kind: str
    param: int


@dataclass
class Goal:
    label: str
    kind: str                    # "output" | "state" | "effect"
    frame: int                   # reference iteration the goal speaks about
    lit: int = FALSE
    a_bits: BitVec | None = None
    b_bits: BitVec | None = None
    name: str | None = None      # output name / state key / effect key
    # Discharge results:
    status: str = "open"         # "unsat" | "sat" | "unknown"
    method: str | None = None    # "structural" | "sim" | "sat" | "bdd"
    conflicts: int = 0
    model: dict[int, bool] | None = None


@dataclass
class PairOutcome:
    status: str                  # "equal" | "diverges" | "unknown"
    goals: list[Goal] = field(default_factory=list)
    failed: Goal | None = None
    notes: list[str] = field(default_factory=list)
    aig_nodes: int = 0

    @property
    def stats(self) -> dict:
        methods: dict[str, int] = {}
        for g in self.goals:
            if g.method:
                methods[g.method] = methods.get(g.method, 0) + 1
        return {"goals": len(self.goals), "methods": methods,
                "conflicts": sum(g.conflicts for g in self.goals),
                "aig_nodes": self.aig_nodes}


class PairInstance:
    """One unrolled A-vs-B instance in one shared AIG."""

    def __init__(self, ref_graph: CDFG, machine_a, machine_b, *,
                 mode: str, frames_a: int, budget: EquivBudget,
                 invariants: list[Invariant] = (),
                 compare_from: int = 0, seed: int = 0) -> None:
        self.ref_graph = ref_graph
        self.ma = machine_a
        self.mb = machine_b
        self.mode = mode
        self.frames_a = frames_a
        self.budget = budget
        self.invariants = list(invariants)
        self.compare_from = compare_from
        self.rng = random.Random(seed)
        self.aig = AIG()
        self.notes: list[str] = []
        self.pairing_complete = True
        self.assumptions: list[int] = []
        self.goals: list[Goal] = []
        # (t, name) -> input variable list (positive literals).
        self.input_vars: dict[tuple[int, str], list[int]] = {}
        self._freehist: dict[tuple[Hashable, int], BitVec] = {}
        self._effects: dict[tuple[Hashable, int], dict] = {}
        self._stored: dict[str, list[dict[Hashable, BitVec]]] = {
            "a": [], "b": []}
        self._state_index = {
            "a": {e.key: e for e in machine_a.state},
            "b": {e.key: e for e in machine_b.state},
        }
        self._check_interfaces()

    # -- interface sanity ------------------------------------------------
    def _check_interfaces(self) -> None:
        ins_a = dict(self.ma.inputs)
        ins_b = dict(self.mb.inputs)
        if ins_a != ins_b:
            raise MachineError(
                f"input interfaces differ: {sorted(ins_a.items())} vs "
                f"{sorted(ins_b.items())}")
        outs_a = {(n, w) for n, w, _ in self.ma.outputs}
        outs_b = {(n, w) for n, w, _ in self.mb.outputs}
        if outs_a != outs_b:
            raise MachineError(
                f"output interfaces differ: {sorted(outs_a)} vs "
                f"{sorted(outs_b)}")

    # -- symbolic plumbing ----------------------------------------------
    def _input(self, t: int, name: str, width: int) -> BitVec:
        key = (t, name)
        if key not in self.input_vars:
            self.input_vars[key] = [
                self.aig.new_input(f"{name}@{t}") >> 1 for _ in range(width)]
        return [2 * v for v in self.input_vars[key]]

    def _free_word(self, tag: str, width: int) -> list[int]:
        return [self.aig.new_input(f"{tag}.{j}") >> 1 for j in range(width)]

    def _ref_width(self, nid: int) -> int:
        return self.ref_graph.node(nid).width

    def _freehist_bits(self, elem: StateElem, side: str, i: int) -> BitVec:
        """Pre-window value of ``elem`` at reference iteration ``i < 0``."""
        if elem.a_node is not None:
            key: Hashable = ("ref", elem.a_node, i)
            width = self._ref_width(elem.a_node)
        else:
            key = ("side", side, elem.key, i)
            width = elem.width
        if key not in self._freehist:
            vars_ = self._free_word(f"hist{key}", width)
            bits = [2 * v for v in vars_]
            self._freehist[key] = bits
            if elem.a_node is not None:
                self._assume_invariants(elem.a_node, bits)
        bits = self._freehist[key]
        return adjust(self.aig, bits, elem.width)

    def _assume_invariants(self, a_node: int, bits: BitVec) -> None:
        for inv in self.invariants:
            if inv.a_node != a_node:
                continue
            if inv.kind == "zext":
                for j in range(inv.param, len(bits)):
                    self.assumptions.append(lit_not(bits[j]))
            elif inv.kind == "const":
                want = const_bits(self.aig, inv.param, len(bits))
                for got, exp in zip(bits, want):
                    self.assumptions.append(self.aig.xnor_(got, exp))

    def _read(self, side: str, u: int, key: Hashable, back: int) -> BitVec:
        elem = self._state_index[side].get(key)
        if elem is None:
            # Reading something never declared as state (reference side
            # reads arbitrary node history): synthesize an element.
            if side != "a":
                raise MachineError(f"machine read of undeclared state {key!r}")
            node = self.ref_graph.node(key)
            elem = StateElem(key=key, width=node.width, depth=back,
                             initial=int(node.attrs.get("initial", 0))
                             & ((1 << node.width) - 1), a_node=key)
            self._state_index[side][key] = elem
        c = u - back
        if self.mode == "bmc":
            if c >= 0:
                return self._stored_bits(side, c, key, elem)
            return const_bits(self.aig, elem.initial, elem.width)
        i = c - elem.a_shift
        if c >= 0 and i >= 0:
            return self._stored_bits(side, c, key, elem)
        return self._freehist_bits(elem, side, i)

    def _stored_bits(self, side: str, c: int, key: Hashable,
                     elem: StateElem) -> BitVec:
        frames = self._stored[side]
        if c >= len(frames) or key not in frames[c]:
            raise MachineError(
                f"state {key!r} read at frame {c} before it was written")
        return adjust(self.aig, frames[c][key], elem.width)

    def _blackbox(self, side: str, a_key: Hashable, i: int, width: int,
                  operands: list[BitVec]) -> BitVec:
        entry = self._effects.setdefault((a_key, i), {"bits": None, "ops": {}})
        if entry["bits"] is None:
            entry["bits"] = [2 * v for v in
                             self._free_word(f"bb{a_key}@{i}", width)]
        entry["ops"][side] = [list(b) for b in operands]
        return adjust(self.aig, entry["bits"], width)

    def _record_effect(self, side: str, a_key: Hashable, i: int,
                       operands: list[BitVec]) -> None:
        entry = self._effects.setdefault((a_key, i), {"bits": None, "ops": {}})
        entry["ops"][side] = [list(b) for b in operands]

    # -- unrolling -------------------------------------------------------
    def build(self) -> None:
        frames_b = self.frames_a + self.mb.max_offset
        widths = dict(self.ma.inputs)
        total_frames = max(self.frames_a, frames_b)
        for t in range(total_frames):
            for name, w in widths.items():
                self._input(t, name, w)
        outs_a: list[dict[str, BitVec]] = []
        for t in range(self.frames_a):
            fx = self._fx("a", t)
            res = self.ma.eval_frame(fx)
            self._stored["a"].append(res.writes)
            outs_a.append(res.outputs)
        outs_b: list[dict[str, BitVec]] = []
        for t in range(frames_b):
            fx = self._fx("b", t)
            res = self.mb.eval_frame(fx)
            self._stored["b"].append(res.writes)
            outs_b.append(res.outputs)
        self._collect_goals(outs_a, outs_b)

    def _fx(self, side: str, t: int) -> FrameContext:
        widths = dict(self.ma.inputs)
        inputs = {name: self._input(t, name, w) for name, w in widths.items()}
        return FrameContext(
            self.aig, t, inputs,
            read=lambda key, back, _s=side, _t=t: self._read(_s, _t, key, back),
            blackbox=lambda a_key, i, w, ops, _s=side:
                self._blackbox(_s, a_key, i, w, ops),
            record_effect=lambda a_key, i, ops, _s=side:
                self._record_effect(_s, a_key, i, ops),
            steady=(self.mode == "induction"),
        )

    # -- goal collection -------------------------------------------------
    def _add_goal(self, goal: Goal, a_bits: BitVec, b_bits: BitVec,
                  *, assume_instead: bool) -> None:
        n = max(len(a_bits), len(b_bits))
        a = adjust(self.aig, a_bits, n)
        b = adjust(self.aig, b_bits, n)
        diff = self.aig.or_many(self.aig.xor_(x, y) for x, y in zip(a, b))
        if assume_instead:
            self.assumptions.append(lit_not(diff))
            return
        goal.lit = diff
        goal.a_bits = a
        goal.b_bits = b
        self.goals.append(goal)

    def _goal_frames(self) -> tuple[int, int]:
        """(first, last-exclusive) reference frames whose goals are proof
        obligations; earlier induction frames become assumptions."""
        if self.mode == "bmc":
            return self.compare_from, self.frames_a
        return self.frames_a - 1, self.frames_a

    def _collect_goals(self, outs_a, outs_b) -> None:
        lo, hi = self._goal_frames()
        induction = self.mode == "induction"
        # Outputs.
        offsets = {name: off for name, _w, off in self.mb.outputs}
        for i in range(self.compare_from if not induction else 0,
                       self.frames_a):
            if induction and i < lo:
                continue  # output equality is a sink; no need to assume it
            for name, _w, _off in self.ma.outputs:
                u = i + offsets[name]
                if u >= len(outs_b):
                    continue
                self._add_goal(
                    Goal(label=f"output {name}@{i}", kind="output",
                         frame=i, name=name),
                    outs_a[i][name], outs_b[u][name], assume_instead=False)
        # State correspondence.
        for elem in self.mb.state:
            if elem.a_node is None:
                continue
            for u in range(len(self._stored["b"])):
                i = u - elem.a_shift
                if i < 0 or i >= self.frames_a:
                    continue
                if not induction and i < self.compare_from:
                    continue
                a_bits = self._stored["a"][i].get(elem.a_node)
                b_bits = self._stored["b"][u].get(elem.key)
                if a_bits is None or b_bits is None:
                    continue
                self._add_goal(
                    Goal(label=f"state {elem.key}@{i}", kind="state",
                         frame=i, name=str(elem.key)),
                    adjust(self.aig, a_bits, elem.width), b_bits,
                    assume_instead=induction and i < lo)
        # Declared invariants must be re-established by the reference side.
        for inv in self.invariants:
            for i in range(self.compare_from if not induction else 0,
                           self.frames_a):
                bits = self._stored["a"][i].get(inv.a_node)
                if bits is None:
                    continue
                if inv.kind == "zext":
                    want = adjust(self.aig, bits[:inv.param], len(bits))
                else:
                    want = const_bits(self.aig, inv.param, len(bits))
                self._add_goal(
                    Goal(label=f"invariant n{inv.a_node}@{i}", kind="state",
                         frame=i, name=f"n{inv.a_node}"),
                    bits, want, assume_instead=induction and i < lo)
        # Effect pairing.
        for (a_key, i), entry in sorted(self._effects.items(),
                                        key=lambda kv: str(kv[0])):
            ops = entry["ops"]
            if i < 0 or i >= self.frames_a:
                if len(ops) == 1 and "b" in ops and i < 0:
                    self.notes.append(
                        f"effect {a_key!r} during pipeline fill (frame {i}) "
                        "is not validated")
                    self.pairing_complete = False
                continue
            if len(ops) < 2:
                self.notes.append(
                    f"effect {a_key!r}@{i} present on only one side; "
                    "cannot pair")
                self.pairing_complete = False
                continue
            if len(ops["a"]) != len(ops["b"]):
                self.notes.append(
                    f"effect {a_key!r}@{i} operand counts differ "
                    f"({len(ops['a'])} vs {len(ops['b'])}); cannot pair")
                self.pairing_complete = False
                continue
            for slot, (oa, ob) in enumerate(zip(ops["a"], ops["b"])):
                self._add_goal(
                    Goal(label=f"effect {a_key!r}@{i} operand {slot}",
                         kind="effect", frame=i, name=str(a_key)),
                    oa, ob,
                    assume_instead=induction and i < lo)

    # -- discharge -------------------------------------------------------
    def discharge(self, tracer=None, stage: str = "") -> PairOutcome:
        outcome = PairOutcome(status="equal", goals=self.goals,
                              notes=self.notes, aig_nodes=len(self.aig))
        pending = []
        for g in self.goals:
            if g.lit == FALSE:
                g.status, g.method = "unsat", "structural"
            else:
                pending.append(g)
        if pending:
            self._simulate(pending)
        for goal in self.goals:
            if goal.status == "sat":       # found by simulation
                outcome.status = "diverges"
                outcome.failed = goal
                return outcome
        for goal in self.goals:
            if goal.status != "open":
                continue
            if tracer is not None:
                with tracer.span("miter", stage=stage,
                                 goal=goal.label) as span:
                    self._discharge_one(goal)
                    span.meta.update(status=goal.status, method=goal.method,
                                     conflicts=goal.conflicts)
            else:
                self._discharge_one(goal)
            if goal.status == "sat":
                outcome.status = "diverges"
                outcome.failed = goal
                return outcome
        if any(g.status == "unknown" for g in self.goals):
            outcome.status = "unknown"
        elif not self.pairing_complete:
            outcome.status = "unknown"
        return outcome

    def _simulate(self, goals: list[Goal]) -> None:
        """64-wide random patterns; assumption-aware counterexample hunt."""
        fixed = self._sim_fixed_bits()
        lits = [g.lit for g in goals]
        assume = list(self.assumptions)
        for _ in range(self.budget.sim_rounds):
            assignment = {
                v: fixed[v] if v in fixed else self.rng.getrandbits(64)
                for v in self.aig.inputs}
            words = self.aig.eval_many(assignment, assume + lits)
            ok = (1 << 64) - 1
            for w in words[:len(assume)]:
                ok &= w
            if not ok:
                continue
            for goal, word in zip(goals, words[len(assume):]):
                hit = word & ok
                if hit and goal.status == "open":
                    bit = (hit & -hit).bit_length() - 1
                    goal.status = "sat"
                    goal.method = "sim"
                    goal.model = {v: bool((assignment.get(v, 0) >> bit) & 1)
                                  for v in self.aig.inputs}

    def _sim_fixed_bits(self) -> dict[int, int]:
        """Pattern words for input vars pinned by simple unit assumptions."""
        fixed: dict[int, int] = {}
        ones = (1 << 64) - 1
        for lit in self.assumptions:
            var = lit >> 1
            if self.aig.fanins[var] is None and var != 0:
                fixed[var] = 0 if (lit & 1) else ones
        return fixed

    def _discharge_one(self, goal: Goal) -> None:
        result = solve_lit(self.aig, goal.lit, assumptions=self.assumptions,
                           max_conflicts=self.budget.sat_conflicts)
        goal.conflicts = result.conflicts
        if result.status == "sat":
            goal.status, goal.method = "sat", "sat"
            goal.model = result.model
            return
        if result.status == "unsat":
            goal.status, goal.method = "unsat", "sat"
            return
        # Conflict budget exhausted: bounded BDD on narrow support.
        full = self.aig.and_many([goal.lit, *self.assumptions]) \
            if self.assumptions else goal.lit
        if len(self.aig.support([full])) <= self.budget.bdd_support:
            status, model = check_lit_bdd(self.aig, full,
                                          max_nodes=self.budget.bdd_nodes)
            if status != "unknown":
                goal.status, goal.method = status, "bdd"
                if model is not None:
                    goal.model = model
                return
        goal.status, goal.method = "unknown", "sat"


def decode_stream(instance: PairInstance,
                  model: Mapping[int, bool]) -> list[dict[str, int]]:
    """SAT model → named input stream (missing variables read as zero)."""
    frames = max((t for t, _ in instance.input_vars), default=-1) + 1
    stream: list[dict[str, int]] = []
    for t in range(frames):
        frame: dict[str, int] = {}
        for (ft, name), vars_ in instance.input_vars.items():
            if ft != t:
                continue
            frame[name] = bits_to_int(
                [1 if model.get(v, False) else 0 for v in vars_])
        stream.append(frame)
    return stream

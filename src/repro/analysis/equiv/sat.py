"""A small CDCL SAT solver and the AIG-to-CNF (Tseitin) bridge.

The solver implements the classic conflict-driven core in pure Python:

* two-literal watching for unit propagation;
* first-UIP conflict analysis with a cheap self-subsumption minimization;
* VSIDS-style exponential variable activities with phase saving;
* Luby-sequence restarts;
* a conflict budget so callers can bound worst-case miters and fall back
  to BDDs (:mod:`~repro.analysis.equiv.bdd`) or report *unknown* instead
  of hanging.

Literals reuse the AIGER convention of :mod:`.aig` (variable ``v`` →
literals ``2v`` / ``2v+1``; variable 0 is the constant, pinned false at
level 0), so AIG cones translate without a renaming layer:
:func:`tseitin` walks the cone of the requested root literals and emits
the three clauses per AND gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .aig import AIG, FALSE, TRUE, lit_not

__all__ = ["SatSolver", "SatResult", "tseitin", "solve_lit"]


@dataclass
class SatResult:
    """Outcome of one SAT call.

    ``status`` is ``"sat"``, ``"unsat"`` or ``"unknown"`` (budget hit).
    ``model`` maps AIG input variables to booleans for SAT outcomes.
    """

    status: str
    model: dict[int, bool] | None = None
    conflicts: int = 0
    decisions: int = 0
    stats: dict = field(default_factory=dict)


def _luby(i: int) -> int:
    """The ``i``-th element (1-based) of the Luby restart sequence."""
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i = i - (1 << (k - 1)) + 1


class SatSolver:
    """CDCL over clauses of AIGER-style literals.

    Variable 0 is reserved for the AIG constant and is pre-assigned false,
    which makes literal 0 behave as FALSE and literal 1 as TRUE in added
    clauses — exactly matching :mod:`.aig`.
    """

    def __init__(self, num_vars: int) -> None:
        self.num_vars = max(num_vars, 1)
        self.clauses: list[list[int]] = []
        self.watches: list[list[int]] = [[] for _ in range(2 * self.num_vars)]
        self.assigns = [-1] * self.num_vars  # -1 unassigned, else 0/1
        self.level = [0] * self.num_vars
        self.reason: list[int | None] = [None] * self.num_vars
        self.activity = [0.0] * self.num_vars
        self.phase = [0] * self.num_vars
        self.var_inc = 1.0
        self.trail: list[int] = []
        self.trail_lim: list[int] = []
        self.qhead = 0
        self.ok = True
        self.assigns[0] = 0  # the constant variable is always false

    # -- clause management ----------------------------------------------
    def add_clause(self, lits: Sequence[int]) -> None:
        """Add a clause at level 0; simplifies against current level-0 facts."""
        if not self.ok:
            return
        assert not self.trail_lim, "clauses must be added before solving"
        seen: set[int] = set()
        out: list[int] = []
        for lit in lits:
            if lit in seen:
                continue
            if lit_not(lit) in seen:
                return  # tautology
            val = self._value(lit)
            if val == 1:
                return  # satisfied at level 0 (covers literal TRUE)
            if val == 0:
                continue  # false at level 0 (covers literal FALSE)
            seen.add(lit)
            out.append(lit)
        if not out:
            self.ok = False
            return
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.ok = False
            return
        idx = len(self.clauses)
        self.clauses.append(out)
        self.watches[out[0] ^ 1].append(idx)
        self.watches[out[1] ^ 1].append(idx)

    # -- assignment -----------------------------------------------------
    def _value(self, lit: int) -> int:
        """1 true, 0 false, -1 unassigned."""
        v = self.assigns[lit >> 1]
        if v < 0:
            return -1
        return v ^ (lit & 1)

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        val = self._value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = lit >> 1
        self.assigns[var] = 1 - (lit & 1)
        self.level[var] = len(self.trail_lim)
        self.reason[var] = reason
        self.trail.append(lit)
        return True

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        while self.qhead < len(self.trail):
            lit = self.trail[self.qhead]
            self.qhead += 1
            falselit = lit_not(lit)
            watchers = self.watches[lit]
            i = 0
            while i < len(watchers):
                ci = watchers[i]
                clause = self.clauses[ci]
                if clause[0] == falselit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    i += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    if self._value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self.watches[lit_not(clause[1])].append(ci)
                        watchers[i] = watchers[-1]
                        watchers.pop()
                        moved = True
                        break
                if moved:
                    continue
                if not self._enqueue(first, ci):
                    return ci
                i += 1
        return None

    # -- VSIDS ----------------------------------------------------------
    def _bump(self, var: int) -> None:
        self.activity[var] += self.var_inc
        if self.activity[var] > 1e100:
            inv = 1e-100
            self.activity = [a * inv for a in self.activity]
            self.var_inc *= inv

    def _decay(self) -> None:
        self.var_inc /= 0.95

    def _pick_branch(self) -> int | None:
        best = -1
        best_act = -1.0
        for var, assign in enumerate(self.assigns):
            if assign < 0 and self.activity[var] > best_act:
                best = var
                best_act = self.activity[var]
        if best < 0:
            return None
        return 2 * best + (0 if self.phase[best] else 1)

    # -- conflict analysis ----------------------------------------------
    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """First-UIP learned clause and backjump level."""
        learnt: list[int] = [0]  # slot for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        index = len(self.trail) - 1
        cur_level = len(self.trail_lim)
        reason_lits: list[int] = list(self.clauses[confl])
        lit = 0
        while True:
            for q in reason_lits:
                var = q >> 1
                if not seen[var] and self.level[var] > 0:
                    seen[var] = True
                    self._bump(var)
                    if self.level[var] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while not seen[self.trail[index] >> 1]:
                index -= 1
            lit = self.trail[index]
            index -= 1
            seen[lit >> 1] = False
            counter -= 1
            if counter == 0:
                break
            r = self.reason[lit >> 1]
            assert r is not None
            reason_lits = [q for q in self.clauses[r] if q != lit]
        learnt[0] = lit_not(lit)
        # Self-subsumption-lite: drop a literal whose whole reason clause
        # is already inside the learnt set (or at level 0).
        marked = {q >> 1 for q in learnt}
        out = [learnt[0]]
        for q in learnt[1:]:
            r = self.reason[q >> 1]
            if r is not None and all(
                    (p >> 1) in marked or self.level[p >> 1] == 0
                    for p in self.clauses[r] if p != lit_not(q)):
                continue
            out.append(q)
        if len(out) == 1:
            return out, 0
        back = max(self.level[q >> 1] for q in out[1:])
        for k in range(1, len(out)):
            if self.level[out[k] >> 1] == back:
                out[1], out[k] = out[k], out[1]
                break
        return out, back

    def _cancel_until(self, target: int) -> None:
        if len(self.trail_lim) <= target:
            return
        bound = self.trail_lim[target]
        for lit in reversed(self.trail[bound:]):
            var = lit >> 1
            self.phase[var] = self.assigns[var]
            self.assigns[var] = -1
            self.reason[var] = None
        del self.trail[bound:]
        del self.trail_lim[target:]
        self.qhead = len(self.trail)

    # -- main loop ------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = (),
              max_conflicts: int | None = None) -> SatResult:
        """Solve under ``assumptions``; returns a :class:`SatResult`."""
        if not self.ok:
            return SatResult("unsat")
        conflicts = decisions = 0
        restart_num = 1
        restart_budget = 32 * _luby(restart_num)
        conflicts_at_restart = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                conflicts += 1
                conflicts_at_restart += 1
                if len(self.trail_lim) == 0:
                    return SatResult("unsat", conflicts=conflicts,
                                     decisions=decisions)
                learnt, back = self._analyze(confl)
                self._cancel_until(back)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        return SatResult("unsat", conflicts=conflicts,
                                         decisions=decisions)
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learnt)
                    self.watches[lit_not(learnt[0])].append(idx)
                    self.watches[lit_not(learnt[1])].append(idx)
                    self._enqueue(learnt[0], idx)
                self._decay()
                if max_conflicts is not None and conflicts >= max_conflicts:
                    self._cancel_until(0)
                    return SatResult("unknown", conflicts=conflicts,
                                     decisions=decisions)
                if conflicts_at_restart >= restart_budget:
                    restart_num += 1
                    restart_budget = 32 * _luby(restart_num)
                    conflicts_at_restart = 0
                    self._cancel_until(0)
                continue
            # Assert pending assumptions (one decision level each), then
            # branch. A false assumption here is implied by level-0 facts
            # plus earlier assumptions — genuinely UNSAT under assumptions.
            next_lit = None
            failed = False
            for alit in assumptions:
                val = self._value(alit)
                if val == 0:
                    failed = True
                    break
                if val == -1:
                    next_lit = alit
                    break
            if failed:
                self._cancel_until(0)
                return SatResult("unsat", conflicts=conflicts,
                                 decisions=decisions,
                                 stats={"assumption_failed": True})
            if next_lit is None:
                next_lit = self._pick_branch()
            if next_lit is None:
                model = {var: bool(assign)
                         for var, assign in enumerate(self.assigns)
                         if assign >= 0}
                self._cancel_until(0)
                return SatResult("sat", model=model, conflicts=conflicts,
                                 decisions=decisions)
            decisions += 1
            self.trail_lim.append(len(self.trail))
            self._enqueue(next_lit, None)


def tseitin(aig: AIG, roots: Sequence[int]) -> SatSolver:
    """A solver primed with the Tseitin encoding of the cone of ``roots``.

    AIG variables map one-to-one onto solver variables, so SAT models can
    be read back against :attr:`AIG.inputs` directly.
    """
    solver = SatSolver(len(aig.fanins))
    for var in aig.cone_vars(roots):
        pair = aig.fanins[var]
        if pair is None:
            continue
        a, b = pair
        t = 2 * var
        solver.add_clause([lit_not(t), a])
        solver.add_clause([lit_not(t), b])
        solver.add_clause([t, lit_not(a), lit_not(b)])
    return solver


def solve_lit(aig: AIG, lit: int, *, assumptions: Sequence[int] = (),
              max_conflicts: int | None = None) -> SatResult:
    """Is ``lit`` (under ``assumptions``) satisfiable?

    Builds the Tseitin CNF of the combined cone, asserts ``lit`` as a unit
    and solves. The returned model (for SAT) covers the cone's input
    variables only.
    """
    if lit == FALSE and not assumptions:
        return SatResult("unsat")
    if lit == TRUE and not assumptions:
        return SatResult("sat", model={})
    solver = tseitin(aig, [lit, *assumptions])
    solver.add_clause([lit])
    result = solver.solve(assumptions=list(assumptions),
                          max_conflicts=max_conflicts)
    if result.status == "sat" and result.model is not None:
        inputs = set(aig.inputs)
        result.model = {v: val for v, val in result.model.items()
                        if v in inputs}
    return result

"""Symbolic frame machines: one per flow stage representation.

A *machine* is a symbolic transition system over AIG bit vectors. Each
frame corresponds to one loop iteration (graph/cover machines) or one
clock cycle (pipeline/RTL machines); loop-carried or register state is
read through a driver-provided callback so the same machine definition
serves bounded model checking (concrete initial values) and the
inductive step (free history constrained by the stage correspondence).

Machines never talk to the SAT solver: they only *encode*. The pairing
of two machines into miters, history resolution and obligation
collection live in :mod:`.miter`.

State correspondence contract: a :class:`StateElem` with key ``k``
written at frame ``u`` holds the value of reference-graph node
``a_node`` at iteration ``u - a_shift``. Iteration-indexed machines use
``a_shift == 0``; cycle-indexed machines use the schedule cycle of the
producing node. The driver leans on this to align induction windows and
to state the per-node correspondence obligations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ...errors import ReproError
from ...ir.graph import CDFG
from ...ir.node import Node
from ...ir.semantics import mask
from ...ir.types import OpKind
from ...scheduling.schedule import Schedule
from .aig import AIG
from .encode import (
    UNINTERPRETED_KINDS,
    BitVec,
    EncodeUnsupported,
    adjust,
    const_bits,
    encode_node,
)

__all__ = [
    "FrameContext",
    "FrameResult",
    "GraphMachine",
    "CoverMachine",
    "PipelineMachine",
    "StateElem",
    "MachineError",
    "machine_outputs",
]


class MachineError(ReproError):
    """The stage artifact cannot be modeled (the validator reports it)."""


@dataclass(frozen=True)
class StateElem:
    """One carried value: a shift register of ``depth`` frames."""

    key: Hashable
    width: int
    depth: int
    initial: int
    a_node: int | None  # reference-graph node this state tracks
    a_shift: int = 0    # frame u holds a_node's iteration u - a_shift


@dataclass
class FrameResult:
    outputs: dict[str, BitVec] = field(default_factory=dict)
    # State writes plus (for the reference side) every node value, so the
    # driver can state correspondence obligations against any a_node.
    writes: dict[Hashable, BitVec] = field(default_factory=dict)


class FrameContext:
    """Driver-side services handed to :meth:`Machine.eval_frame`.

    ``read(key, back)`` resolves a state read ``back >= 1`` frames ago.
    ``blackbox(a_key, i, width, operands)`` returns the shared
    uninterpreted value for an effectful op instance (LOAD) and records
    the operand vectors for Ackermann-style pairing obligations;
    ``record_effect`` does the recording alone (STOREs have exact value
    semantics but their memory side effect must still pair up).
    """

    def __init__(self, aig: AIG, frame: int,
                 inputs: Mapping[str, BitVec],
                 read: Callable[[Hashable, int], BitVec],
                 blackbox: Callable[[Hashable, int, int, list[BitVec]], BitVec],
                 record_effect: Callable[[Hashable, int, list[BitVec]], None],
                 steady: bool = False):
        self.aig = aig
        self.frame = frame
        # ``steady`` is True in induction mode: ``frame`` is an offset
        # into an arbitrarily late window, so any warm-up machinery
        # (the emitter's ``warm_sr``) must be modeled as saturated.
        self.steady = steady
        self._inputs = inputs
        self.read = read
        self.blackbox = blackbox
        self.record_effect = record_effect

    def input(self, name: str) -> BitVec:
        try:
            return self._inputs[name]
        except KeyError:
            raise MachineError(f"no symbolic input named {name!r}") from None


def _initial_of(node: Node) -> int:
    return mask(int(node.attrs.get("initial", 0)), node.width)


def _input_name(node: Node) -> str:
    return node.name or f"in{node.nid}"


def _output_name(node: Node) -> str:
    return node.name or f"out{node.nid}"


def machine_outputs(graph: CDFG) -> list[tuple[str, int]]:
    """(name, width) per OUTPUT node, functional-simulator naming."""
    return [(_output_name(n), n.width) for n in graph.outputs]


class GraphMachine:
    """Reference semantics: one frame = one functional-sim iteration."""

    kind = "graph"

    def __init__(self, graph: CDFG, *,
                 pair_map: Mapping[int, int] | None = None) -> None:
        """``pair_map`` maps this graph's node ids to reference-graph ids
        for blackbox pairing and state correspondence (identity when this
        machine *is* the reference side)."""
        self.graph = graph
        self.pair_map = dict(pair_map) if pair_map is not None else None
        self._order = graph.topological_order()
        self._state = self._collect_state()

    def _a_node(self, nid: int) -> int | None:
        if self.pair_map is None:
            return nid
        return self.pair_map.get(nid)

    def _collect_state(self) -> list[StateElem]:
        depth: dict[int, int] = {}
        for nid in self.graph.node_ids:
            for op in self.graph.node(nid).operands:
                if op.distance > 0:
                    depth[op.source] = max(depth.get(op.source, 0),
                                           op.distance)
        elems = []
        for src, d in sorted(depth.items()):
            node = self.graph.node(src)
            elems.append(StateElem(key=src, width=node.width, depth=d,
                                   initial=_initial_of(node),
                                   a_node=self._a_node(src)))
        return elems

    @property
    def inputs(self) -> list[tuple[str, int]]:
        return [(_input_name(n), n.width) for n in self.graph.inputs]

    @property
    def outputs(self) -> list[tuple[str, int, int]]:
        return [(_output_name(n), n.width, 0) for n in self.graph.outputs]

    @property
    def state(self) -> list[StateElem]:
        return self._state

    @property
    def max_offset(self) -> int:
        return 0

    def eval_frame(self, fx: FrameContext) -> FrameResult:
        graph = self.graph
        values: dict[int, BitVec] = {}
        result = FrameResult()
        for nid in self._order:
            node = graph.node(nid)
            if node.kind is OpKind.INPUT:
                values[nid] = adjust(fx.aig, fx.input(_input_name(node)),
                                     node.width)
            elif node.kind is OpKind.CONST:
                values[nid] = const_bits(fx.aig, int(node.value), node.width)
            else:
                args = []
                widths = []
                for op in node.operands:
                    src = graph.node(op.source)
                    widths.append(src.width)
                    if op.distance == 0:
                        args.append(values[op.source])
                    else:
                        args.append(fx.read(op.source, op.distance))
                values[nid] = self._apply(fx, node, args, widths)
            result.writes[nid] = values[nid]
        for node in graph.outputs:
            result.outputs[_output_name(node)] = values[node.nid]
        return result

    def _apply(self, fx: FrameContext, node: Node, args: list[BitVec],
               widths: list[int]) -> BitVec:
        if node.kind in UNINTERPRETED_KINDS:
            a_key = self._a_node(node.nid)
            if a_key is None:
                raise MachineError(
                    f"unpaired {node.kind.value} node {node.nid}")
            return fx.blackbox((a_key, node.kind.value), fx.frame,
                               node.width, args)
        if node.kind is OpKind.STORE:
            a_key = self._a_node(node.nid)
            if a_key is not None:
                fx.record_effect((a_key, "store"), fx.frame, args)
            return encode_node(fx.aig, node, args, widths)
        return encode_node(fx.aig, node, args, widths)


class _CoverEvalMixin:
    """Shared cone evaluation mirroring ``VerilogEmitter._expr``.

    Out-of-cone, non-boundary operands are fed zero — exactly the
    emitter's fallback; validating *that* choice against the functional
    reference is the point of the cuts stage.
    """

    graph: CDFG
    schedule: Schedule

    def _cone_bits(self, fx: FrameContext, values: dict[int, BitVec],
                   frame_root: int, nid: int, depth: int = 0) -> BitVec:
        if depth > 256:
            raise MachineError(f"cone of node {frame_root} is too deep")
        graph = self.graph
        node = graph.node(nid)
        cut = self.schedule.cover[frame_root]
        if node.kind is OpKind.CONST:
            return const_bits(fx.aig, int(node.value), node.width)
        if node.kind in UNINTERPRETED_KINDS or node.kind is OpKind.STORE:
            raise MachineError(
                f"{node.kind.value} node {nid} inside cone of {frame_root}")
        entry_sources = {u for u, _ in cut.entries}
        args: list[BitVec] = []
        widths: list[int] = []
        for op in node.operands:
            src = graph.node(op.source)
            widths.append(src.width)
            if src.kind is OpKind.CONST:
                args.append(const_bits(fx.aig, int(src.value), src.width))
            elif op.source in cut.boundary or op.source in entry_sources:
                args.append(self._staged(fx, values, op.source, frame_root,
                                         op.distance))
            elif op.source in cut.interior or op.source == frame_root:
                args.append(self._cone_bits(fx, values, frame_root,
                                            op.source, depth + 1))
            else:
                args.append(const_bits(fx.aig, 0, src.width))
        return encode_node(fx.aig, node, args, widths)

    def _staged(self, fx: FrameContext, values: dict[int, BitVec],
                source: int, consumer: int, distance: int) -> BitVec:
        raise NotImplementedError

    # -- shared wiring ---------------------------------------------------
    def _wire_nodes(self) -> list[int]:
        """Nodes carrying a wire: covered roots plus inputs, topo order."""
        out = []
        for nid in self.graph.topological_order():
            node = self.graph.node(nid)
            if node.kind is OpKind.INPUT or nid in self.schedule.cover:
                if node.kind not in (OpKind.OUTPUT, OpKind.CONST):
                    out.append(nid)
        return out

    def _eval_wire(self, fx: FrameContext, values: dict[int, BitVec],
                   nid: int) -> BitVec:
        node = self.graph.node(nid)
        if node.kind is OpKind.INPUT:
            return adjust(fx.aig, fx.input(_input_name(node)), node.width)
        if node.kind in UNINTERPRETED_KINDS:
            args = [self._operand_ref(fx, values, node, slot)
                    for slot in range(len(node.operands))]
            return fx.blackbox((nid, node.kind.value), self._pair_frame(nid),
                               node.width, args)
        if node.kind is OpKind.STORE:
            addr = self._operand_ref(fx, values, node, 0)
            data = self._operand_ref(fx, values, node, 1)
            fx.record_effect((nid, "store"), self._pair_frame(nid),
                             [addr, data])
            return adjust(fx.aig, data, node.width)
        return self._cone_bits(fx, values, nid, nid)

    def _operand_ref(self, fx: FrameContext, values: dict[int, BitVec],
                     node: Node, slot: int) -> BitVec:
        op = node.operands[slot]
        src = self.graph.node(op.source)
        if src.kind is OpKind.CONST:
            return const_bits(fx.aig, int(src.value), src.width)
        return self._staged(fx, values, op.source, node.nid, op.distance)

    def _pair_frame(self, nid: int) -> int:
        raise NotImplementedError

    def _emit_outputs(self, fx: FrameContext, values: dict[int, BitVec],
                      result: FrameResult) -> None:
        for node in self.graph.outputs:
            op = node.operands[0]
            src = self.graph.node(op.source)
            if src.kind is OpKind.CONST:
                bits = const_bits(fx.aig, int(src.value), src.width)
            else:
                bits = self._staged(fx, values, op.source, node.nid,
                                    op.distance)
            result.outputs[_output_name(node)] = adjust(fx.aig, bits,
                                                        node.width)


class CoverMachine(_CoverEvalMixin):
    """Cut-cover semantics, iteration-indexed.

    Each covered root is recomputed from its cone over boundary wires;
    carried boundary references read state at their dependence distance.
    Catches unsound cut masks and bad boundary choices independent of
    any scheduling concern.
    """

    kind = "cover"

    def __init__(self, schedule: Schedule) -> None:
        if not schedule.cover:
            raise MachineError("cover validation needs a covered schedule")
        self.schedule = schedule
        self.graph = schedule.graph
        self._wires = self._wire_nodes()
        self._state = self._collect_state()

    def _collect_state(self) -> list[StateElem]:
        depth: dict[int, int] = {}

        def note(source: int, distance: int) -> None:
            if distance > 0:
                src = self.graph.node(source)
                if src.kind is not OpKind.CONST:
                    depth[source] = max(depth.get(source, 0), distance)

        for nid in self.graph.node_ids:
            for op in self.graph.node(nid).operands:
                note(op.source, op.distance)
        elems = []
        for src, d in sorted(depth.items()):
            node = self.graph.node(src)
            elems.append(StateElem(key=src, width=node.width, depth=d,
                                   initial=_initial_of(node), a_node=src))
        return elems

    @property
    def inputs(self) -> list[tuple[str, int]]:
        return [(_input_name(n), n.width) for n in self.graph.inputs]

    @property
    def outputs(self) -> list[tuple[str, int, int]]:
        return [(_output_name(n), n.width, 0) for n in self.graph.outputs]

    @property
    def state(self) -> list[StateElem]:
        return self._state

    @property
    def max_offset(self) -> int:
        return 0

    def _staged(self, fx, values, source, consumer, distance):
        if distance == 0:
            try:
                return values[source]
            except KeyError:
                raise MachineError(
                    f"node {consumer} references {source}, which has no "
                    f"wire (not covered)") from None
        return fx.read(source, distance)

    def _pair_frame(self, nid: int) -> int:
        return self._current_frame

    def eval_frame(self, fx: FrameContext) -> FrameResult:
        self._current_frame = fx.frame
        values: dict[int, BitVec] = {}
        result = FrameResult()
        for nid in self._wires:
            values[nid] = self._eval_wire(fx, values, nid)
            result.writes[nid] = values[nid]
        self._emit_outputs(fx, values, result)
        return result


class PipelineMachine(_CoverEvalMixin):
    """Register-chain semantics, cycle-indexed (II=1).

    The same cones as :class:`CoverMachine`, but every boundary
    reference rides a chain of ``gap = S_consumer + d - S_source``
    registers — the exact structure the Verilog emitter pins down. A
    wire written at cycle ``u`` holds its node's iteration
    ``u - S_node``, so a corrupted schedule cycle misaligns iterations
    and shows up as a miter counterexample.
    """

    kind = "pipeline"

    def __init__(self, schedule: Schedule) -> None:
        if schedule.ii != 1:
            raise MachineError(
                f"pipeline validation supports II=1, got II={schedule.ii}")
        if not schedule.cover:
            raise MachineError("pipeline validation needs a covered schedule")
        self.schedule = schedule
        self.graph = schedule.graph
        self._wires = self._wire_nodes()
        self._wire_set = set(self._wires)
        self._warm_frames = 0
        self._gaps = self._collect_gaps()
        self._state = self._build_state()

    @property
    def warm_frames(self) -> int:
        """Clock frames before every carried read is warm (see _staged)."""
        return self._warm_frames

    def _cycle(self, nid: int) -> int:
        return int(self.schedule.cycle.get(nid, 0))

    def _gap(self, source: int, consumer: int, distance: int) -> int:
        gap = self._cycle(consumer) + distance - self._cycle(source)
        if gap < 0:
            raise MachineError(
                f"negative stage gap {gap} from {source} to {consumer}")
        return gap

    def _collect_gaps(self) -> dict[int, int]:
        """Max register-chain depth per staged source (like the emitter)."""
        gaps: dict[int, int] = {}

        def note(source: int, consumer: int, distance: int) -> None:
            src = self.graph.node(source)
            if src.kind is OpKind.CONST:
                return
            if distance > 0:
                self._warm_frames = max(self._warm_frames,
                                        distance + self._cycle(consumer))
            gap = self._gap(source, consumer, distance)
            if gap > 0:
                gaps[source] = max(gaps.get(source, 0), gap)

        cover = self.schedule.cover
        for root, cut in cover.items():
            node = self.graph.node(root)
            if node.kind in UNINTERPRETED_KINDS or node.kind is OpKind.STORE:
                for op in node.operands:
                    if self.graph.node(op.source).kind is not OpKind.CONST:
                        note(op.source, root, op.distance)
                continue
            entry_sources = {u for u, _ in cut.entries}
            stack = [root]
            seen = set()
            while stack:
                nid = stack.pop()
                if nid in seen:
                    continue
                seen.add(nid)
                for op in self.graph.node(nid).operands:
                    src = self.graph.node(op.source)
                    if src.kind is OpKind.CONST:
                        continue
                    if op.source in cut.boundary or op.source in entry_sources:
                        note(op.source, root, op.distance)
                    elif op.source in cut.interior or op.source == root:
                        stack.append(op.source)
        for node in self.graph.outputs:
            op = node.operands[0]
            if self.graph.node(op.source).kind is not OpKind.CONST:
                note(op.source, node.nid, op.distance)
        return gaps

    def _build_state(self) -> list[StateElem]:
        elems = []
        for src in sorted(self._gaps):
            node = self.graph.node(src)
            elems.append(StateElem(key=src, width=node.width,
                                   depth=self._gaps[src],
                                   initial=_initial_of(node), a_node=src,
                                   a_shift=self._cycle(src)))
        return elems

    @property
    def inputs(self) -> list[tuple[str, int]]:
        return [(_input_name(n), n.width) for n in self.graph.inputs]

    @property
    def outputs(self) -> list[tuple[str, int, int]]:
        return [(_output_name(n), n.width, self._cycle(n.nid))
                for n in self.graph.outputs]

    @property
    def state(self) -> list[StateElem]:
        return self._state

    @property
    def max_offset(self) -> int:
        offs = [off for _, _, off in self.outputs]
        offs.extend(e.a_shift + e.depth for e in self._state)
        return max(offs, default=0)

    def _staged(self, fx, values, source, consumer, distance):
        if distance > 0 and not fx.steady \
                and fx.frame - self._cycle(consumer) < distance:
            # Cold carried read: the consumer is computing iteration
            # i = frame - S_consumer < d, so source iteration i - d was
            # never produced — the register chain (or same-cycle wire)
            # holds junk derived from other initials. The emitter's
            # ``warm_sr`` gate substitutes the declared initial in
            # exactly these cycles; mirror it.
            node = self.graph.node(source)
            return const_bits(fx.aig, _initial_of(node), node.width)
        gap = self._gap(source, consumer, distance)
        if gap == 0:
            # Same-cycle wire reference. A carried edge can land here when
            # the source is scheduled ``distance`` cycles later than the
            # consumer (S_s = S_c + d): Verilog wires reference each other
            # in any declaration order, so resolve on demand.
            if source in self._wire_set:
                return self._demand(fx, values, source)
            raise MachineError(
                f"node {consumer} references {source} in the same "
                f"cycle, but it has no wire")
        return fx.read(source, gap)

    def _demand(self, fx: FrameContext, values: dict[int, BitVec],
                nid: int) -> BitVec:
        if nid in values:
            return values[nid]
        if nid in self._visiting:
            raise MachineError(f"combinational cycle through node {nid}")
        self._visiting.add(nid)
        try:
            values[nid] = self._eval_wire(fx, values, nid)
        finally:
            self._visiting.discard(nid)
        return values[nid]

    def _pair_frame(self, nid: int) -> int:
        return self._current_frame - self._cycle(nid)

    def eval_frame(self, fx: FrameContext) -> FrameResult:
        self._current_frame = fx.frame
        values: dict[int, BitVec] = {}
        result = FrameResult()
        self._visiting: set[int] = set()
        for nid in self._wires:
            self._demand(fx, values, nid)
        for nid in self._wires:
            result.writes[nid] = values[nid]
        self._emit_outputs(fx, values, result)
        return result

"""Symbolic translation validation for the flow's lowering stages.

Every stage of the flow — dataflow narrowing, cut covering, pipelined
replay, Verilog emission — is re-modeled as a *machine* (an iteration-
indexed transition system over an and-inverter graph) and checked
against the reference CDFG semantics with a miter: shared symbolic
inputs, XOR-ed outputs, and a proof that the difference is unsatisfiable
(structural hashing, random simulation, CDCL SAT, bounded BDDs — in that
order). Loop-carried state is handled by bounded model checking from the
declared initial values plus k-induction over a free history window.

Entry points:

* :func:`validate_flow` — prove (or refute) every stage of one flow run;
* :class:`EquivBudget` — frame counts and solver budgets;
* ``repro equiv DESIGN`` — the CLI; ``EQ001``–``EQ006`` — the lint rules
  (opt-in via the ``equiv`` linter option).

See ``docs/equivalence.md`` for the design and its soundness caveats.
"""

from .aig import AIG
from .miter import EquivBudget, Goal, Invariant, PairInstance, decode_stream
from .sat import SatSolver, solve_lit, tseitin
from .validate import (
    EQUIV_SCHEMA,
    STAGES,
    Counterexample,
    EquivReport,
    StageVerdict,
    validate_flow,
)

__all__ = [
    "AIG",
    "Counterexample",
    "EQUIV_SCHEMA",
    "EquivBudget",
    "EquivReport",
    "Goal",
    "Invariant",
    "PairInstance",
    "STAGES",
    "SatSolver",
    "StageVerdict",
    "decode_stream",
    "solve_lit",
    "tseitin",
    "validate_flow",
]

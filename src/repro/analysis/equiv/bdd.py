"""A bounded reduced ordered BDD, the fallback prover for narrow cones.

When a miter's SAT query exhausts its conflict budget but the cone's
input support is small, an explicit canonical representation often
settles it instantly (XOR-heavy arithmetic miters are the classic case:
hard for resolution, trivial for BDDs). The package keeps this engine
deliberately tiny: ITE over a unique table with a computed-table cache,
a hard node cap (:class:`BddLimitError`), and input order taken from the
AIG's topological cone order.

``build_lit`` converts an AIG cone bottom-up; the result is FALSE/TRUE
terminal or a node from which :func:`BDD.any_sat` extracts a satisfying
assignment for counterexample decoding.
"""

from __future__ import annotations

from ...errors import ReproError
from .aig import AIG

__all__ = ["BDD", "BddLimitError", "check_lit_bdd"]


class BddLimitError(ReproError):
    """The BDD grew past its configured node cap."""


class BDD:
    """Reduced ordered BDD over variables 0..n-1 (index = order)."""

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars: int, max_nodes: int = 200_000) -> None:
        self.num_vars = num_vars
        self.max_nodes = max_nodes
        # nodes[i] = (var, low, high); terminals use var = num_vars.
        self.nodes: list[tuple[int, int, int]] = [
            (num_vars, 0, 0), (num_vars, 1, 1)]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}

    def var(self, index: int) -> int:
        return self._mk(index, self.FALSE, self.TRUE)

    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        if len(self.nodes) >= self.max_nodes:
            raise BddLimitError(
                f"BDD exceeded {self.max_nodes} nodes")
        idx = len(self.nodes)
        self.nodes.append(key)
        self._unique[key] = idx
        return idx

    def ite(self, f: int, g: int, h: int) -> int:
        """``f ? g : h`` with standard terminal cases and memoization."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        found = self._ite_cache.get(key)
        if found is not None:
            return found
        top = min(self.nodes[x][0] for x in (f, g, h))
        fl, fh = self._cofactors(f, top)
        gl, gh = self._cofactors(g, top)
        hl, hh = self._cofactors(h, top)
        result = self._mk(top, self.ite(fl, gl, hl), self.ite(fh, gh, hh))
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        v, low, high = self.nodes[node]
        if v != var:
            return node, node
        return low, high

    def not_(self, f: int) -> int:
        return self.ite(f, self.FALSE, self.TRUE)

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, self.FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, self.TRUE, g)

    def any_sat(self, node: int) -> dict[int, bool] | None:
        """One satisfying assignment (variable index → value), or None."""
        if node == self.FALSE:
            return None
        out: dict[int, bool] = {}
        while node != self.TRUE:
            var, low, high = self.nodes[node]
            if low != self.FALSE:
                out[var] = False
                node = low
            else:
                out[var] = True
                node = high
        return out


def check_lit_bdd(aig: AIG, lit: int,
                  max_nodes: int = 200_000) -> tuple[str, dict[int, bool] | None]:
    """Decide satisfiability of an AIG literal by building its BDD.

    Returns ``("sat", model)`` / ``("unsat", None)`` /
    ``("unknown", None)`` when the node cap is hit. The model maps AIG
    input variables to booleans.
    """
    support = aig.support([lit])
    order = {var: i for i, var in enumerate(support)}
    bdd = BDD(len(support), max_nodes=max_nodes)
    table: dict[int, int] = {0: bdd.FALSE}
    try:
        for var in aig.cone_vars([lit]):
            if var in table:
                continue
            pair = aig.fanins[var]
            if pair is None:
                table[var] = bdd.var(order[var])
                continue
            a, b = pair
            fa = table[a >> 1]
            if a & 1:
                fa = bdd.not_(fa)
            fb = table[b >> 1]
            if b & 1:
                fb = bdd.not_(fb)
            table[var] = bdd.and_(fa, fb)
    except BddLimitError:
        return "unknown", None
    node = table[lit >> 1]
    if lit & 1:
        node = bdd.not_(node)
    if node == bdd.FALSE:
        return "unsat", None
    assignment = bdd.any_sat(node) or {}
    model = {support[idx]: val for idx, val in assignment.items()}
    return "sat", model

"""Stage validators: each flow stage proven against its predecessor.

Four miters chain the flow's artifacts back to the original CDFG:

``narrow``
    original graph vs :func:`~repro.ir.transforms.narrow_graph` output,
    with the narrowing's own facts (high-bits-zero, proven constants)
    as candidate invariants that the miter *re-proves* inductively.
``cover``
    narrowed graph vs the cut cover (each LUT root recomputed from its
    cone over boundary wires, zero-filled exactly like the emitter).
``pipeline``
    narrowed graph vs the II=1 register-chain unrolling of the schedule.
``rtl``
    narrowed graph vs the *emitted Verilog text*, re-parsed and
    re-evaluated under Verilog sizing rules (:mod:`.netlist`).

Verdict policy — the engine never cries wolf:

* ``proved``: BMC base case clean and k-induction closed (or the pair
  is stateless, where one frame is exhaustive over all iterations).
* ``bounded``: base case clean for ``max_frames`` iterations, induction
  did not close within the budget.
* ``inequivalent``: only for a BMC counterexample *confirmed* by
  independent re-evaluation — replayed through the functional simulator
  when the design is memory-free, re-evaluated inside the AIG under the
  model otherwise. Induction-step counterexamples are never reported
  (they may start from unreachable state).
* ``unknown``: budget exhausted, a counterexample failed confirmation,
  or effect pairing was incomplete.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Mapping

from ...ir.graph import CDFG
from ...ir.semantics import mask
from ...ir.transforms import narrow_graph
from ...ir.types import OpKind
from ...rtl.parse import RtlParseError, parse_module
from ...rtl.verilog import emit_verilog
from ...scheduling.schedule import Schedule
from ...sim.functional import FunctionalSimulator
from .encode import bits_to_int
from .machines import CoverMachine, GraphMachine, MachineError, PipelineMachine
from .miter import EquivBudget, Goal, Invariant, PairInstance, decode_stream
from .netlist import RtlMachine

__all__ = ["EQUIV_SCHEMA", "STAGES", "Counterexample", "StageVerdict",
           "EquivReport", "validate_flow", "narrow_invariants"]

EQUIV_SCHEMA = "repro-equiv/v1"

#: Stage names in chain order.
STAGES = ("narrow", "cover", "pipeline", "rtl")


@dataclass
class Counterexample:
    goal: str
    kind: str
    frame: int
    name: str | None
    stream: list[dict[str, int]]
    a_value: int | None
    b_value: int | None
    confirmed: str | None  # "replay" | "abstract" | None

    def to_dict(self) -> dict:
        return {
            "goal": self.goal, "kind": self.kind, "frame": self.frame,
            "name": self.name, "stream": self.stream,
            "a_value": self.a_value, "b_value": self.b_value,
            "confirmed": self.confirmed,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Counterexample":
        return cls(goal=data["goal"], kind=data["kind"],
                   frame=int(data["frame"]), name=data.get("name"),
                   stream=[{k: int(v) for k, v in frame.items()}
                           for frame in data.get("stream", [])],
                   a_value=data.get("a_value"), b_value=data.get("b_value"),
                   confirmed=data.get("confirmed"))


@dataclass
class StageVerdict:
    stage: str
    status: str  # proved | bounded | inequivalent | unknown | skipped | error
    detail: str = ""
    frames: int = 0
    induction_k: int | None = None
    goals: int = 0
    methods: dict[str, int] = field(default_factory=dict)
    conflicts: int = 0
    aig_nodes: int = 0
    seconds: float = 0.0
    notes: list[str] = field(default_factory=list)
    counterexample: Counterexample | None = None

    def to_dict(self) -> dict:
        out = {
            "stage": self.stage, "status": self.status, "detail": self.detail,
            "frames": self.frames, "induction_k": self.induction_k,
            "goals": self.goals, "methods": self.methods,
            "conflicts": self.conflicts, "aig_nodes": self.aig_nodes,
            "seconds": round(self.seconds, 4), "notes": self.notes,
        }
        if self.counterexample is not None:
            out["counterexample"] = self.counterexample.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "StageVerdict":
        cex = data.get("counterexample")
        return cls(
            stage=data["stage"], status=data["status"],
            detail=data.get("detail", ""), frames=int(data.get("frames", 0)),
            induction_k=data.get("induction_k"),
            goals=int(data.get("goals", 0)),
            methods={k: int(v) for k, v in data.get("methods", {}).items()},
            conflicts=int(data.get("conflicts", 0)),
            aig_nodes=int(data.get("aig_nodes", 0)),
            seconds=float(data.get("seconds", 0.0)),
            notes=list(data.get("notes", [])),
            counterexample=(Counterexample.from_dict(cex)
                            if cex is not None else None),
        )


@dataclass
class EquivReport:
    design: str
    method: str
    stages: list[StageVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.status not in ("inequivalent", "error")
                   for v in self.stages)

    def verdict(self, stage: str) -> StageVerdict | None:
        for v in self.stages:
            if v.stage == stage:
                return v
        return None

    def to_dict(self) -> dict:
        return {
            "schema": EQUIV_SCHEMA,
            "design": self.design,
            "method": self.method,
            "ok": self.ok,
            "stages": [v.to_dict() for v in self.stages],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "EquivReport":
        if data.get("schema") != EQUIV_SCHEMA:
            raise ValueError(f"not a {EQUIV_SCHEMA} document")
        return cls(design=data.get("design", ""),
                   method=data.get("method", ""),
                   stages=[StageVerdict.from_dict(v)
                           for v in data.get("stages", [])])


# ----------------------------------------------------------------------
# Invariants and pairing for the narrow stage.
# ----------------------------------------------------------------------

def narrow_invariants(original: CDFG, narrowed: CDFG,
                      machine_b: GraphMachine) -> list[Invariant]:
    """Candidate invariants for carried state, from the narrowing itself.

    Only carried values need constraining (free history is what the
    induction step over-approximates). Two sources: what the narrowed
    graph's carried state claims about the nodes it tracks, and what the
    dataflow fixpoint proved about the *original* graph's carried
    sources (narrowing may eliminate a carried dependence entirely, yet
    the reference side still reads it — e.g. a recurrence proven
    constant). An invariant is only usable when the declared initial
    value satisfies it (carried reads before iteration 0 yield the
    initial); and each one is re-proved as a goal, so a wrong fact fails
    the miter rather than corrupting the proof.
    """
    from ..dataflow import cached_analyze  # lazy: avoids an import cycle

    best: dict[tuple[int, str], int] = {}

    def offer(a_node: int, kind: str, param: int) -> None:
        key = (a_node, kind)
        if kind == "zext":
            best[key] = min(best.get(key, param), param)
        else:
            best.setdefault(key, param)

    for elem in machine_b.state:
        if elem.a_node is None:
            continue
        new_node = narrowed.node(elem.key)
        wa = original.node(elem.a_node).width
        if new_node.kind is OpKind.CONST:
            offer(elem.a_node, "const", int(new_node.value))
        elif elem.width < wa:
            offer(elem.a_node, "zext", elem.width)

    df = cached_analyze(original)
    carried = {op.source for n in original for op in n.operands
               if op.distance > 0}
    for nid in sorted(carried):
        node = original.node(nid)
        init = mask(int(node.attrs.get("initial", 0)), node.width)
        value = df.constant_value(nid)
        if value is not None and init == value:
            offer(nid, "const", value)
            continue
        dead = df.dead_high_bits(nid)
        if 0 < dead < node.width:
            live = node.width - dead
            if init < (1 << live):
                offer(nid, "zext", live)

    return [Invariant(a_node=a, kind=k, param=p)
            for (a, k), p in sorted(best.items())]


def _invert_mapping(mapping: Mapping[int, int]) -> dict[int, int]:
    inverse: dict[int, int] = {}
    for old, new in sorted(mapping.items()):
        inverse.setdefault(new, old)
    return inverse


def _graphs_identical(a: CDFG, b: CDFG) -> bool:
    """Structural identity (same ids, kinds, widths, edges, attrs)."""
    ids_a = list(a.node_ids)
    if ids_a != list(b.node_ids):
        return False
    for nid in ids_a:
        na, nb = a.node(nid), b.node(nid)
        if (na.kind, na.width, na.name, na.value, na.amount,
                dict(na.attrs)) != (nb.kind, nb.width, nb.name, nb.value,
                                    nb.amount, dict(nb.attrs)):
            return False
        if [(op.source, op.distance) for op in na.operands] != \
                [(op.source, op.distance) for op in nb.operands]:
            return False
    return True


def _is_memory_free(graph: CDFG) -> bool:
    return not any(n.kind in (OpKind.LOAD, OpKind.STORE, OpKind.DIV,
                              OpKind.MOD) for n in graph)


# ----------------------------------------------------------------------
# One stage = BMC base + induction ladder.
# ----------------------------------------------------------------------

def _confirm(pi: PairInstance, goal: Goal, ref_graph: CDFG,
             verdict: StageVerdict) -> Counterexample:
    """Independently confirm a BMC model; downgrades to unknown inside
    the caller when confirmation fails."""
    model = goal.model or {}
    stream = decode_stream(pi, model)
    packed = {v: (1 if model.get(v, False) else 0) for v in pi.aig.inputs}
    a_val = b_val = None
    if goal.a_bits is not None:
        a_val = bits_to_int([w & 1 for w in
                             pi.aig.eval_many(packed, goal.a_bits)])
    if goal.b_bits is not None:
        b_val = bits_to_int([w & 1 for w in
                             pi.aig.eval_many(packed, goal.b_bits)])
    cex = Counterexample(goal=goal.label, kind=goal.kind, frame=goal.frame,
                         name=goal.name, stream=stream, a_value=a_val,
                         b_value=b_val, confirmed=None)
    if a_val is None or b_val is None or a_val == b_val:
        verdict.notes.append(
            f"model for {goal.label} failed abstract re-evaluation")
        return cex
    cex.confirmed = "abstract"
    if (goal.kind == "output" and goal.name is not None
            and _is_memory_free(ref_graph)):
        sim = FunctionalSimulator(ref_graph)
        try:
            outs = [sim.step(frame) for frame in stream[:goal.frame + 1]]
            sim_val = outs[goal.frame][goal.name]
        except Exception as exc:  # replay must never crash the report
            verdict.notes.append(f"functional replay failed: {exc}")
            return cex
        if sim_val == a_val:
            cex.confirmed = "replay"
        else:
            cex.confirmed = None
            verdict.notes.append(
                f"replay mismatch: functional {goal.name}={sim_val}, "
                f"symbolic reference {a_val} — encoder bug, not a stage bug")
    return cex


def _steady_state_note(stage: str, ref_graph: CDFG, make_machines,
                       invariants: list[Invariant], budget: EquivBudget,
                       verdict: StageVerdict, fill: int, frames: int,
                       tracer=None) -> None:
    """After a fill-window counterexample, separately check the frames
    *past* the fill window. A clean result pins the divergence to the
    startup transient (a known, documented class — the hardware has no
    register to materialise a carried initial); a dirty one means the
    stage is broken in steady state too, and the oracle must not excuse
    it."""
    steady_frames = max(frames, fill + 1)
    try:
        ma, mb = make_machines()
        steady = PairInstance(ref_graph, ma, mb, mode="bmc",
                              frames_a=steady_frames, budget=budget,
                              invariants=invariants, compare_from=fill)
        steady.build()
        out = steady.discharge(tracer=tracer, stage=stage)
    except MachineError as exc:
        verdict.notes.append(f"steady-state re-check failed to build: {exc}")
        return
    verdict.goals += len(out.goals)
    verdict.conflicts += out.stats["conflicts"]
    for m, c in out.stats["methods"].items():
        verdict.methods[m] = verdict.methods.get(m, 0) + c
    if out.status == "equal":
        verdict.notes.append(
            f"steady state checks out: iterations {fill}.."
            f"{steady_frames - 1} proved equal once the fill transient "
            "has drained")
    elif out.status == "diverges" and out.failed is not None:
        verdict.notes.append(
            f"steady state also diverges ({out.failed.label}): this is "
            "not just a fill transient")
    else:
        verdict.notes.append("steady-state re-check exhausted its budget")


def _check_stage(stage: str, ref_graph: CDFG, make_machines,
                 invariants: list[Invariant], budget: EquivBudget,
                 tracer=None) -> StageVerdict:
    """Run the BMC + induction ladder for one stage."""
    verdict = StageVerdict(stage=stage, status="unknown")
    t0 = time.perf_counter()
    try:
        ma, mb = make_machines()
        # The BMC base must cover every cold frame: induction models the
        # warm-up gate as saturated, so an initialization bug is only
        # catchable while warm_sr is still filling.
        frames = max(budget.max_frames, budget.induction_k,
                     getattr(mb, "warm_frames", 0))
        pi = PairInstance(ref_graph, ma, mb, mode="bmc", frames_a=frames,
                          budget=budget, invariants=invariants)
        pi.build()
        outcome = pi.discharge(tracer=tracer, stage=stage)
        verdict.frames = frames
        verdict.goals = len(outcome.goals)
        verdict.methods = dict(outcome.stats["methods"])
        verdict.conflicts = outcome.stats["conflicts"]
        verdict.aig_nodes = outcome.aig_nodes
        verdict.notes.extend(outcome.notes)
        if outcome.status == "diverges":
            assert outcome.failed is not None
            cex = _confirm(pi, outcome.failed, ref_graph, verdict)
            verdict.counterexample = cex
            # The fill window: frames that can still observe declared
            # initials. A state element holding ``a_node``'s iteration
            # ``u - a_shift`` and read up to ``depth`` taps back exposes
            # an initial whenever ``u - a_shift - tap < 0`` — on either
            # side of the miter (staged registers on B, carried-dependence
            # history on A; a gap-0 carried edge has no register at all to
            # hold its initial, so the A-side depth is what detects it).
            fill = max((e.a_shift + e.depth
                        for e in (*ma.state, *mb.state)), default=0)
            if cex.frame < fill:
                verdict.notes.append(
                    f"divergence at iteration {cex.frame} lies in the "
                    f"pipeline fill window (first {fill} iterations): "
                    "staged registers and carried-dependence initials are "
                    "not yet flushed, so early outputs differ from the "
                    "functional semantics")
                _steady_state_note(stage, ref_graph, make_machines,
                                   invariants, budget, verdict, fill,
                                   frames, tracer)
            if cex.confirmed is not None:
                verdict.status = "inequivalent"
                verdict.detail = (f"{outcome.failed.label} diverges "
                                  f"({cex.a_value} vs {cex.b_value}, "
                                  f"{cex.confirmed}-confirmed)")
            else:
                verdict.status = "unknown"
                verdict.detail = "counterexample failed confirmation"
            return verdict
        base_clean = outcome.status == "equal"
        if not base_clean:
            verdict.status = "unknown"
            verdict.detail = "base case exhausted its budget"
            return verdict
        # Stateless pairs: one frame is every frame (up to input renaming),
        # so the clean base case is already a complete proof.
        ma2, mb2 = make_machines()
        if not ma2.state and not mb2.state and pi.pairing_complete:
            verdict.status = "proved"
            verdict.detail = "stateless pair; base case is exhaustive"
            return verdict
        for k in range(1, budget.induction_k + 1):
            ma2, mb2 = make_machines()
            step = PairInstance(ref_graph, ma2, mb2, mode="induction",
                                frames_a=k, budget=budget,
                                invariants=invariants)
            step.build()
            step_out = step.discharge(tracer=tracer, stage=stage)
            verdict.goals += len(step_out.goals)
            verdict.conflicts += step_out.stats["conflicts"]
            for m, c in step_out.stats["methods"].items():
                verdict.methods[m] = verdict.methods.get(m, 0) + c
            if step_out.status == "equal" and step.pairing_complete:
                verdict.status = "proved"
                verdict.induction_k = k
                verdict.detail = f"{k}-induction closed"
                return verdict
        verdict.status = "bounded"
        verdict.detail = (f"equivalent for {frames} iterations; induction "
                          f"open at k<={budget.induction_k}")
        return verdict
    except RtlParseError as exc:
        verdict.status = "error"
        verdict.detail = f"rtl-parse: {exc}"
        return verdict
    except MachineError as exc:
        verdict.status = "error"
        verdict.detail = str(exc)
        return verdict
    finally:
        verdict.seconds = time.perf_counter() - t0


# ----------------------------------------------------------------------
# The flow-level entry point.
# ----------------------------------------------------------------------

def validate_flow(graph: CDFG, schedule: Schedule | None, *,
                  stages: tuple[str, ...] | list[str] | None = None,
                  budget: EquivBudget | None = None,
                  tracer=None, design: str = "",
                  method: str = "") -> EquivReport:
    """Validate every requested stage of one flow run.

    ``graph`` is the original (pre-narrowing) CDFG; ``schedule`` the flow
    result (may be None to validate narrowing alone). Stage artifacts
    are rebuilt deterministically where the flow does not hand them over
    (the narrowing is recomputed and structurally compared against
    ``schedule.graph`` so the chain of miters actually composes).
    """
    budget = budget or EquivBudget()
    wanted = tuple(stages) if stages else STAGES
    for s in wanted:
        if s not in STAGES:
            raise ValueError(f"unknown stage {s!r}; expected one of {STAGES}")
    report = EquivReport(design=design or graph.name,
                         method=method or (schedule.method if schedule
                                           else ""))

    narrowed: CDFG | None = None
    mapping: dict[int, int] = {}
    sched_is_narrowed = False
    if schedule is not None and schedule.graph is graph:
        narrowed, mapping = graph, {n.nid: n.nid for n in graph}
        sched_is_narrowed = True
    else:
        narrowed, mapping = narrow_graph(graph)
        if schedule is not None:
            # The chain composes when the scheduled graph is (structurally)
            # either endpoint of the narrow proof: the recomputed narrowing
            # or the original graph itself (no-narrow flows, fallbacks).
            sched_is_narrowed = (_graphs_identical(narrowed, schedule.graph)
                                 or _graphs_identical(graph, schedule.graph))

    for stage in wanted:
        if stage == "narrow":
            inverse = _invert_mapping(mapping)

            def make_narrow():
                ma = GraphMachine(graph)
                mb = GraphMachine(narrowed, pair_map=inverse)
                return ma, mb

            _, probe = make_narrow()
            invs = narrow_invariants(graph, narrowed, probe)
            report.stages.append(_check_stage(
                "narrow", graph, make_narrow, invs, budget, tracer))
            continue

        if schedule is None:
            report.stages.append(StageVerdict(
                stage=stage, status="skipped", detail="no schedule"))
            continue
        if not sched_is_narrowed:
            report.stages.append(StageVerdict(
                stage=stage, status="skipped",
                detail="schedule graph does not match recomputed "
                       "narrowing; cannot chain the proof"))
            continue

        ref = schedule.graph

        if stage == "cover":
            report.stages.append(_check_stage(
                "cover", ref,
                lambda: (GraphMachine(ref), CoverMachine(schedule)),
                [], budget, tracer))
        elif stage == "pipeline":
            report.stages.append(_check_stage(
                "pipeline", ref,
                lambda: (GraphMachine(ref), PipelineMachine(schedule)),
                [], budget, tracer))
        elif stage == "rtl":
            try:
                module = parse_module(emit_verilog(schedule))
            except RtlParseError as exc:
                report.stages.append(StageVerdict(
                    stage="rtl", status="error",
                    detail=f"rtl-parse: {exc}"))
                continue
            report.stages.append(_check_stage(
                "rtl", ref,
                lambda: (GraphMachine(ref), RtlMachine(module, schedule)),
                [], budget, tracer))
    return report

"""CDFG structural and semantic rules (codes ``IR0xx``).

``IR001``–``IR008`` are the historical :func:`repro.ir.validate.check_problems`
checks, migrated one check per rule; their message strings are kept
byte-identical so the backward-compatible wrapper reproduces the old output
exactly. ``IR010``+ are new semantic rules with no prior coverage.
"""

from __future__ import annotations

from typing import Iterator

from ..ir.graph import CDFG
from ..ir.node import Node
from ..ir.types import COMPARISON_KINDS, OpKind
from .diagnostic import Diagnostic, Severity
from .registry import (
    GATE_ACYCLIC,
    GATE_WELLFORMED,
    AnalysisContext,
    finding,
    register,
)

__all__ = ["live_set"]


def live_set(graph: CDFG) -> set[int]:
    """Nodes backward-reachable from outputs (across any distance)."""
    live: set[int] = set()
    stack = [out.nid for out in graph.outputs]
    while stack:
        nid = stack.pop()
        if nid in live:
            continue
        live.add(nid)
        for op in graph.node(nid).operands:
            if op.source not in live:
                stack.append(op.source)
    return live


# ----------------------------------------------------------------------
# Migrated structural checks (message text is load-bearing: the
# check_problems wrapper must return the historical strings verbatim).
# ----------------------------------------------------------------------

@register("IR001", "missing-operand-source", "cdfg", Severity.ERROR,
          "An operand references a node id that does not exist.",
          establishes=GATE_WELLFORMED)
def missing_operand_source(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph:
        for idx, op in enumerate(node.operands):
            if op.source not in graph:
                yield finding(
                    f"node {node.nid} operand {idx} references missing "
                    f"node {op.source}",
                    node=node.nid,
                    hint="rebuild the graph or patch the operand with "
                         "set_operand before analysis",
                )


@register("IR002", "const-overflow", "cdfg", Severity.ERROR,
          "A constant's value does not fit its declared width.",
          gate=GATE_WELLFORMED)
def const_overflow(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for node in ctx.graph:
        if node.kind is OpKind.CONST and node.value is not None:
            if node.value < 0 or node.value >= (1 << node.width):
                yield finding(
                    f"const {node.nid} value {node.value} does not fit "
                    f"width {node.width}",
                    node=node.nid,
                    hint=f"mask the value to {node.width} bits or widen "
                         "the constant",
                )


@register("IR003", "mux-select-width", "cdfg", Severity.ERROR,
          "A MUX select input is not 1 bit wide.", gate=GATE_WELLFORMED)
def mux_select_width(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph:
        if node.kind is OpKind.MUX:
            sel = graph.node(node.operands[0].source)
            if sel.width != 1:
                yield finding(
                    f"mux {node.nid} select (node {sel.nid}) has width "
                    f"{sel.width} != 1",
                    node=node.nid,
                    edge=(sel.nid, node.nid),
                    hint="slice a single bit out of the select value",
                )


@register("IR004", "output-not-sink", "cdfg", Severity.ERROR,
          "An OUTPUT node has downstream consumers.", gate=GATE_WELLFORMED)
def output_not_sink(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph:
        if node.kind is OpKind.OUTPUT and graph.uses(node.nid):
            yield finding(
                f"output {node.nid} has consumers",
                node=node.nid,
                hint="consume the output's operand directly instead",
            )


@register("IR005", "slice-out-of-range", "cdfg", Severity.ERROR,
          "A SLICE reads past the end of its source value.",
          gate=GATE_WELLFORMED)
def slice_out_of_range(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph:
        if node.kind is OpKind.SLICE:
            src = graph.node(node.operands[0].source)
            if node.amount + node.width > src.width:
                yield finding(
                    f"slice {node.nid} [{node.amount}+:{node.width}] exceeds "
                    f"source width {src.width}",
                    node=node.nid,
                    edge=(src.nid, node.nid),
                )


@register("IR006", "combinational-cycle", "cdfg", Severity.ERROR,
          "Distance-0 edges form a cycle (zero-delay feedback loop).",
          gate=GATE_WELLFORMED, establishes=GATE_ACYCLIC)
def combinational_cycle(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    # Kahn's algorithm over distance-0 edges; the leftover set is exactly
    # the union of all combinational cycles plus anything locked behind one.
    indeg: dict[int, int] = {nid: 0 for nid in graph.node_ids}
    for node in graph:
        for op in node.operands:
            if op.distance == 0 and op.source in graph:
                indeg[node.nid] += 1
    queue = [nid for nid, d in indeg.items() if d == 0]
    seen = 0
    while queue:
        nid = queue.pop()
        seen += 1
        for use in graph.uses(nid):
            if use.distance == 0:
                indeg[use.consumer] -= 1
                if indeg[use.consumer] == 0:
                    queue.append(use.consumer)
    if seen == len(graph.node_ids):
        return
    cyclic = sorted(nid for nid, d in indeg.items() if d > 0)
    yield finding(
        f"combinational cycle through nodes {cyclic[:10]}",
        nodes=cyclic[:10],
        hint="break the loop with a distance>=1 (loop-carried) edge",
    )


@register("IR007", "no-primary-outputs", "cdfg", Severity.ERROR,
          "The graph has no OUTPUT nodes, so every operation is dead.",
          gate=GATE_WELLFORMED)
def no_primary_outputs(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    if not ctx.graph.outputs:
        yield finding(
            "graph has no primary outputs",
            hint="declare at least one OUTPUT node",
        )


@register("IR008", "dead-operation", "cdfg", Severity.ERROR,
          "An operation does not reach any primary output.",
          gate=GATE_WELLFORMED)
def dead_operation(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    if not graph.outputs:
        return  # IR007 covers this; flagging every node would be noise
    live = live_set(graph)
    for node in graph:
        if not node.is_boundary and node.nid not in live:
            yield finding(
                f"dead operation {node.nid} ({node.kind.value}) "
                "does not reach any output",
                node=node.nid,
                hint="run eliminate_dead_code or wire the value to an output",
            )


# ----------------------------------------------------------------------
# New semantic rules.
# ----------------------------------------------------------------------

def _expected_width_problem(graph: CDFG, node: Node) -> str | None:
    """Describe a width-inference mismatch, or None when consistent."""
    kind = node.kind
    widths = [graph.node(op.source).width for op in node.operands]
    if kind in COMPARISON_KINDS and node.width != 1:
        return (f"comparison produces 1 bit but node declares "
                f"width {node.width}")
    if kind is OpKind.CONCAT and node.width != widths[0] + widths[1]:
        return (f"concat of {widths[0]}+{widths[1]} bits declares "
                f"width {node.width}")
    if kind is OpKind.TRUNC and node.width > widths[0]:
        return (f"trunc widens: source has {widths[0]} bits, result "
                f"declares {node.width}")
    if kind is OpKind.ZEXT and node.width < widths[0]:
        return (f"zext narrows: source has {widths[0]} bits, result "
                f"declares {node.width}")
    if kind in (OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT) \
            and node.width > max(widths):
        return (f"result width {node.width} exceeds widest operand "
                f"({max(widths)} bits); upper bits carry no information")
    if kind is OpKind.MUX and node.width > max(widths[1], widths[2]):
        return (f"mux width {node.width} exceeds both arms "
                f"({widths[1]} and {widths[2]} bits)")
    if kind in (OpKind.ADD, OpKind.SUB) and node.width > max(widths) + 1:
        return (f"{kind.value} of {widths[0]}- and {widths[1]}-bit values "
                f"needs at most {max(widths) + 1} bits, declares {node.width}")
    return None


@register("IR010", "width-mismatch", "cdfg", Severity.WARNING,
          "Operand and result widths are inconsistent for the operation.",
          gate=GATE_WELLFORMED)
def width_mismatch(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph:
        if node.is_boundary or node.is_blackbox or not node.operands:
            continue
        problem = _expected_width_problem(graph, node)
        if problem is not None:
            yield finding(
                f"node {node.nid} ({node.kind.value}): {problem}",
                node=node.nid,
                hint="declared widths directly inflate the Eq. 13/15 "
                     "LUT/FF bit counts; tighten them",
            )


@register("IR011", "never-selected-mux-arm", "cdfg", Severity.WARNING,
          "A MUX select is constant, so one arm is never selected.",
          gate=GATE_WELLFORMED)
def never_selected_mux_arm(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph:
        if node.kind is not OpKind.MUX:
            continue
        sel_op = node.operands[0]
        sel = graph.node(sel_op.source)
        if sel.kind is OpKind.CONST and sel_op.distance == 0:
            taken = 1 if (sel.value or 0) & 1 else 2
            dead_slot = 2 if taken == 1 else 1
            dead_src = node.operands[dead_slot].source
            yield finding(
                f"mux {node.nid} select is constant {sel.value & 1}: "
                f"arm {dead_slot} (node {dead_src}) is never selected",
                node=node.nid,
                edge=(dead_src, node.nid),
                hint="replace the mux with the selected arm",
            )
        elif (node.operands[1].source == node.operands[2].source
              and node.operands[1].distance == node.operands[2].distance):
            yield finding(
                f"mux {node.nid} has identical arms (node "
                f"{node.operands[1].source}); the select is irrelevant",
                node=node.nid,
                hint="forward the arm value and drop the mux",
            )


@register("IR012", "constant-foldable", "cdfg", Severity.WARNING,
          "An operation computes a compile-time constant.",
          gate=GATE_ACYCLIC)
def constant_foldable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    # Propagate constness topologically so whole subgraphs are caught, then
    # report only the *frontier* (constant nodes with a non-constant or
    # boundary consumer) to keep reports proportional to the fix, not to
    # the subgraph size.
    is_const: set[int] = set()
    for nid in graph.topological_order():
        node = graph.node(nid)
        if node.kind is OpKind.CONST:
            is_const.add(nid)
            continue
        if node.is_boundary or node.is_blackbox or not node.operands:
            continue
        if all(op.distance == 0 and op.source in is_const
               for op in node.operands):
            is_const.add(nid)
    foldable = [nid for nid in is_const
                if graph.node(nid).kind is not OpKind.CONST]
    total_bits = sum(graph.node(nid).width for nid in foldable)
    for nid in foldable:
        node = graph.node(nid)
        consumers = graph.successor_ids(nid)
        if all(c in is_const for c in consumers) and consumers:
            continue  # an interior node of a larger foldable subgraph
        yield finding(
            f"node {nid} ({node.kind.value}) computes a constant "
            f"({total_bits} foldable bits in this graph)",
            node=nid,
            hint="run fold_constants before scheduling; constant logic "
                 "inflates LUT-bit counts",
        )


@register("IR013", "unused-input", "cdfg", Severity.INFO,
          "A primary input is never read.", gate=GATE_WELLFORMED)
def unused_input(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    for node in graph.inputs:
        if not graph.uses(node.nid):
            yield finding(
                f"input {node.nid} ({node.label}) is never read",
                node=node.nid,
                hint="drop the port or wire it into the datapath",
            )

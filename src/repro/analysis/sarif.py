"""SARIF 2.1.0 export for lint reports.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs ingest; ``python -m repro lint --format sarif`` emits one run whose
driver lists every rule that produced a finding and whose results anchor
to *logical* locations (CDFG nodes/edges, MILP constraints) — there are
no source files to point at in a dataflow-graph world.
"""

from __future__ import annotations

from typing import Any

from .diagnostic import Diagnostic, DiagnosticReport, Severity
from .registry import all_rules

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _logical_location(diag: Diagnostic) -> dict[str, Any] | None:
    subject = diag.subject or ""
    if diag.node is not None:
        return {"name": f"node {diag.node}", "kind": "node",
                "fullyQualifiedName": f"{subject}/node/{diag.node}"}
    if diag.edge is not None:
        src, dst = diag.edge
        return {"name": f"edge {src}->{dst}", "kind": "edge",
                "fullyQualifiedName": f"{subject}/edge/{src}-{dst}"}
    if diag.constraint is not None:
        return {"name": diag.constraint, "kind": "constraint",
                "fullyQualifiedName": f"{subject}/constraint/{diag.constraint}"}
    return None


def _result(diag: Diagnostic) -> dict[str, Any]:
    out: dict[str, Any] = {
        "ruleId": diag.code,
        "level": _LEVEL[diag.severity],
        "message": {"text": diag.message},
    }
    location = _logical_location(diag)
    if location is not None:
        out["locations"] = [{"logicalLocations": [location]}]
    properties: dict[str, Any] = {}
    if diag.subject:
        properties["subject"] = diag.subject
    if diag.hint:
        properties["hint"] = diag.hint
    if diag.nodes:
        properties["nodes"] = list(diag.nodes)
    if properties:
        out["properties"] = properties
    return out


def to_sarif(reports: list[DiagnosticReport],
             tool_name: str = "repro-lint") -> dict[str, Any]:
    """One SARIF log with a single run covering all ``reports``."""
    present = {d.code for report in reports for d in report}
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            "defaultConfiguration": {
                "level": _LEVEL[rule.severity],
            },
        }
        for rule in all_rules()
        if rule.code in present
    ]
    results = [_result(d) for report in reports for d in report.sorted()]
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": tool_name,
                "informationUri":
                    "https://github.com/paper-repro/area-efficient-pipelining",
                "rules": rules,
            }},
            "results": results,
        }],
    }

"""DEP-soundness spot checks (code ``DEP001``).

The word-level ``DEP`` function (:func:`repro.bitdeps.dep.dep_bits`) must
*over-approximate* the true bit-level dependences: every operand bit that can
actually influence an output bit must be listed, or cut enumeration will
build cones whose LUTs miss inputs. This rule samples nodes and output bits
and compares ``DEP`` against a bit-blasted ground truth
(:func:`repro.bitdeps.bitblast.bit_blast`).

Each sampled node is rebuilt in an *isolated probe graph* — fresh primary
inputs per non-constant operand slot, constants copied verbatim — and that
probe is blasted. Blasting the node in situ would not work: the blaster
implements shifts, slices and extensions by aliasing bit values rather than
creating nodes, so "operand 1 bit 14" of an adder can be the very same
blasted node as a bit arriving through operand 0, and cutting the network at
operand-bit ids would conflate the two paths. Fresh inputs per slot make the
operand-bit boundary a true cut, which also matches DEP's semantics (slots
are independent free inputs, even when they share a word-level source).

Structural reachability alone would still over-report: ``DEP`` legitimately
refines away bits that are structurally wired but functionally inert (the
sign-test refinement keeps only the MSB of ``B >= 0`` even though the
blasted borrow chain touches every bit). So a reached-but-unlisted bit is
only reported when a *functional witness* exists: a leaf assignment where
flipping that one bit flips the sampled output bit. A witness is
irrefutable evidence of unsoundness.

Witnesses are found in two tiers. When the sliced cone is small enough
(``dep_sat_nodes`` interior nodes, default 1500), the question is decided
*exactly*: the cone is encoded twice into an and-inverter graph over
shared leaf variables — the suspect bit pinned 0 on one side, 1 on the
other — and the SAT solver (:mod:`repro.analysis.equiv.sat`) searches for
an assignment where the outputs differ. UNSAT proves the reached bit
functionally inert (the refinement was right); SAT decodes to a concrete
witness. Larger cones, and SAT calls that exhaust their conflict budget
(``dep_sat_conflicts``), fall back to random sampling, which can miss
witnesses but never fabricates one.

Sampling budgets come from the linter options (``dep_nodes``,
``dep_bit_samples``, ``dep_trials``); node kinds the blaster does not model
(e.g. variable shifts) are skipped.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..errors import CutError, IRError
from ..ir.builder import DFGBuilder
from ..ir.semantics import eval_node
from ..ir.types import OpKind
from ..bitdeps.dep import dep_bits
from .diagnostic import Diagnostic, Severity
from .registry import GATE_ACYCLIC, AnalysisContext, finding, register

_CONE_CAP = 4000  # nodes per sampled output bit; beyond this, skip the bit


def _probe(graph, node):
    """Rebuild ``node`` alone in a fresh graph suitable for blasting.

    Returns ``(probe_graph, probe_nid, slot_input_nids)`` where
    ``slot_input_nids[slot]`` is the probe INPUT standing in for that operand
    (``None`` for constant operands, which are copied so constant-aware DEP
    refinements see the same context).
    """
    b = DFGBuilder(f"dep_probe_{node.nid}", width=node.width)
    vals = []
    slot_inputs: list[int | None] = []
    for slot, op in enumerate(node.operands):
        src = graph.node(op.source)
        if src.kind is OpKind.CONST:
            vals.append(b.const(src.value or 0, src.width))
            slot_inputs.append(None)
        else:
            v = b.input(f"op{slot}", src.width)
            vals.append(v)
            slot_inputs.append(v.nid)
    attrs = {} if node.amount is None else {"amount": node.amount}
    probe = b.op(node.kind, *vals, width=node.width, **attrs)
    b.output(probe, "out")
    return b.graph, probe.nid, slot_inputs


def _cone(graph, out_id: int, leaves: set[int]) -> tuple[list[int], set[int], bool]:
    """Backward slice from ``out_id`` stopping at ``leaves`` and constants.

    Returns ``(interior_in_topo_order, reached_leaves, ok)``; interior node
    ids ascend, which is a valid topological order for rebuilt graphs.
    """
    interior: set[int] = set()
    reached: set[int] = set()
    stack = [out_id]
    while stack:
        nid = stack.pop()
        if nid in leaves:
            reached.add(nid)
            continue
        if nid in interior:
            continue
        node = graph.node(nid)
        if node.kind is OpKind.CONST:
            continue
        interior.add(nid)
        if len(interior) > _CONE_CAP:
            return [], set(), False
        for op in node.operands:
            stack.append(op.source)
    return sorted(interior), reached, True


def _sat_witness(bg, order: list[int], reached: set[int], fid: int,
                 out_id: int, max_conflicts: int):
    """Decide exactly whether flipping leaf ``fid`` can flip ``out_id``.

    Returns ``("sat", witness)`` with a leaf assignment, ``("unsat",
    None)`` — a *proof* the bit is functionally inert — or ``("unknown",
    None)`` when the encoding is unsupported or the budget runs out.
    """
    from .equiv.aig import AIG, FALSE, TRUE
    from .equiv.encode import EncodeUnsupported, const_bits, encode_node
    from .equiv.sat import solve_lit

    aig = AIG()
    leaf_vars = {leaf: aig.new_input(f"leaf{leaf}")
                 for leaf in sorted(reached) if leaf != fid}

    def build(pin: int) -> int | None:
        values: dict[int, list[int]] = {
            leaf: [var] for leaf, var in leaf_vars.items()}
        values[fid] = [TRUE if pin else FALSE]
        for nid in order:
            node = bg.node(nid)
            args = []
            widths = []
            for op in node.operands:
                src = bg.node(op.source)
                if op.source in values:
                    args.append(values[op.source])
                elif src.kind is OpKind.CONST:
                    args.append(const_bits(aig, src.value or 0, src.width))
                else:  # outside the slice: cannot influence the cone
                    args.append([FALSE] * src.width)
                widths.append(src.width)
            values[nid] = encode_node(aig, node, args, widths)
        bit = values.get(out_id)
        return None if bit is None else bit[0]

    try:
        lo = build(0)
        hi = build(1)
    except EncodeUnsupported:
        return "unknown", None
    if lo is None or hi is None:
        return "unknown", None
    result = solve_lit(aig, aig.xor_(lo, hi), max_conflicts=max_conflicts)
    if result.status != "sat":
        return result.status, None
    model = result.model or {}
    witness = {leaf: int(model.get(var_lit >> 1, False))
               for leaf, var_lit in leaf_vars.items()}
    return "sat", witness


def _evaluate(graph, order: list[int], assignment: dict[int, int],
              out_id: int) -> int:
    """Evaluate the cone under a leaf/const assignment; returns the out bit."""
    values = dict(assignment)
    for nid in order:
        node = graph.node(nid)
        args = []
        widths = []
        for op in node.operands:
            src = graph.node(op.source)
            if op.source in values:
                args.append(values[op.source])
            elif src.kind is OpKind.CONST:
                args.append(src.value or 0)
            else:  # outside the slice: cannot influence the cone
                args.append(0)
            widths.append(src.width)
        values[nid] = eval_node(node, args, widths)
    return values[out_id] & 1


@register("DEP001", "dep-underapproximation", "cdfg", Severity.ERROR,
          "Word-level DEP misses a bit-level dependence proven by the "
          "bit-blasted ground truth.", gate=GATE_ACYCLIC)
def dep_soundness(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    opts = ctx.options
    max_nodes = int(opts.get("dep_nodes", 12))
    max_bits = int(opts.get("dep_bit_samples", 4))
    trials = int(opts.get("dep_trials", 4))
    sat_nodes = int(opts.get("dep_sat_nodes", 1500))
    sat_conflicts = int(opts.get("dep_sat_conflicts", 20_000))
    if max_nodes <= 0:
        return

    candidates = [
        node for node in graph if node.is_mappable and node.operands
    ]
    rng = random.Random(0xD5EED ^ len(graph))
    if len(candidates) > max_nodes:
        candidates = rng.sample(candidates, max_nodes)
        candidates.sort(key=lambda n: n.nid)

    for node in candidates:
        try:
            from ..bitdeps.bitblast import bit_blast

            probe_graph, probe_nid, slot_inputs = _probe(graph, node)
            blast = bit_blast(probe_graph)
        except (IRError, CutError):
            continue  # kind the blaster does not model; nothing to check

        # Probe input bit id -> the unique (operand slot, bit index) it
        # stands for. Fresh inputs per slot guarantee uniqueness.
        leaf_pair: dict[int, tuple[int, int]] = {}
        for slot, in_nid in enumerate(slot_inputs):
            if in_nid is None:
                continue
            for bidx, fid in enumerate(blast.bit_ids.get(in_nid, [])):
                if fid is not None:
                    leaf_pair[fid] = (slot, bidx)
        leaves = set(leaf_pair)

        bg = blast.graph
        bit_indices = list(range(node.width))
        if len(bit_indices) > max_bits:
            bit_indices = sorted(rng.sample(bit_indices, max_bits))
        for j in bit_indices:
            out_id = blast.bit_ids[probe_nid][j]
            if out_id is None:
                continue
            try:
                allowed = {(e.slot, e.bit) for e in dep_bits(graph, node, j)}
            except CutError:
                break
            order, reached, ok = _cone(bg, out_id, leaves)
            if not ok:
                continue
            suspects = [
                fid for fid in sorted(reached)
                if leaf_pair[fid] not in allowed
            ]
            for fid in suspects:
                witness = None
                how = "sampled witness"
                status = "unknown"
                if len(order) <= sat_nodes:
                    status, witness = _sat_witness(bg, order, reached, fid,
                                                   out_id, sat_conflicts)
                if status == "unsat":
                    continue  # proved inert: the DEP refinement was right
                if status == "sat":
                    how = "exact SAT witness"
                else:  # cone too big or budget hit: sampling fallback
                    for _ in range(trials):
                        base = {leaf: rng.getrandbits(1) for leaf in reached}
                        lo = dict(base)
                        lo[fid] = 0
                        hi = dict(base)
                        hi[fid] = 1
                        if _evaluate(bg, order, lo, out_id) != \
                                _evaluate(bg, order, hi, out_id):
                            witness = base
                            break
                    if witness is None:
                        continue
                slot, bidx = leaf_pair[fid]
                src = node.operands[slot].source
                yield finding(
                    f"DEP({node.kind.value} {node.nid}[{j}]) omits operand "
                    f"{slot} bit {bidx} (node {src}), but flipping that bit "
                    f"changes the output in the bit-blasted ground truth "
                    f"({how})",
                    node=node.nid,
                    edge=(src, node.nid),
                    hint="fix dep_bits for this kind: an under-approximate "
                         "DEP silently mis-sizes every cut through it",
                )

"""Diagnostic value objects for the static-analysis engine.

A :class:`Diagnostic` is one machine-readable finding: a stable code
(``IR006``, ``SCH003``, ``MILP001``...), a severity, an optional location
(node id, edge, or constraint name), a human message and an optional fix
hint. A :class:`DiagnosticReport` is an ordered collection with filtering,
sorting and rendering (text and schema-stable JSON, see
``docs/diagnostics.md``).

Severities form a total order (``info < warning < error``) so thresholds
like ``--fail-on warning`` are a single comparison.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

__all__ = ["Severity", "Diagnostic", "DiagnosticReport", "SCHEMA_VERSION"]

#: Version tag embedded in every JSON report; bump on breaking changes.
SCHEMA_VERSION = "repro-diagnostics/v1"


class Severity(enum.Enum):
    """How bad a finding is. Ordered: ``INFO < WARNING < ERROR``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _RANK[self]

    def __lt__(self, other: "Severity") -> bool:
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        return self.rank >= other.rank

    @classmethod
    def parse(cls, text: "str | Severity") -> "Severity":
        """Accept a :class:`Severity` or its string value (case-insensitive)."""
        if isinstance(text, Severity):
            return text
        try:
            return cls(text.lower())
        except ValueError:
            raise ValueError(
                f"unknown severity {text!r}; expected one of "
                f"{', '.join(s.value for s in cls)}"
            ) from None


_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule.

    Attributes
    ----------
    code:
        Stable rule code (``IR001``...). Codes are never reused; retired
        rules keep their number reserved.
    severity:
        Effective severity (rule default unless overridden by the linter).
    message:
        One-line human-readable description.
    rule:
        The kebab-case rule name (``combinational-cycle``).
    node:
        Primary CDFG node id the finding is anchored to, if any.
    nodes:
        Additional involved node ids (e.g. all members of a cycle).
    edge:
        ``(source, consumer)`` node-id pair for edge-anchored findings.
    constraint:
        Constraint or variable name for MILP-model findings.
    hint:
        Optional actionable fix suggestion.
    subject:
        What was analyzed (design/schedule/model name); stamped by the
        linter driver.
    """

    code: str
    severity: Severity
    message: str
    rule: str = ""
    node: int | None = None
    nodes: tuple[int, ...] = ()
    edge: tuple[int, int] | None = None
    constraint: str | None = None
    hint: str | None = None
    subject: str | None = None

    def sort_key(self) -> tuple:
        """Most severe first, then by code and location for stable output."""
        return (-self.severity.rank, self.code,
                self.node if self.node is not None else -1, self.message)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSON report (stable key set)."""
        out: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
        }
        if self.node is not None:
            out["node"] = self.node
        if self.nodes:
            out["nodes"] = list(self.nodes)
        if self.edge is not None:
            out["edge"] = {"source": self.edge[0], "consumer": self.edge[1]}
        if self.constraint is not None:
            out["constraint"] = self.constraint
        if self.hint is not None:
            out["hint"] = self.hint
        if self.subject is not None:
            out["subject"] = self.subject
        return out

    def render(self) -> str:
        """One text line: ``CODE severity [@node N] message (hint)``."""
        loc = ""
        if self.node is not None:
            loc = f" @node {self.node}"
        elif self.edge is not None:
            loc = f" @edge {self.edge[0]}->{self.edge[1]}"
        elif self.constraint is not None:
            loc = f" @{self.constraint}"
        hint = f"  [hint: {self.hint}]" if self.hint else ""
        return f"{self.code} {self.severity.value:7s}{loc}: {self.message}{hint}"


class DiagnosticReport:
    """An ordered, filterable collection of diagnostics for one subject."""

    def __init__(self, subject: str = "",
                 diagnostics: Iterable[Diagnostic] = ()) -> None:
        self.subject = subject
        self.diagnostics: list[Diagnostic] = list(diagnostics)

    # -- collection protocol -------------------------------------------
    def add(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- queries --------------------------------------------------------
    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def worst(self) -> Severity | None:
        """Highest severity present, or ``None`` when the report is clean."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics),
                   key=lambda s: s.rank)

    def counts(self) -> dict[str, int]:
        """``{"error": n, "warning": n, "info": n}`` (always all three keys)."""
        out = {s.value: 0 for s in (Severity.ERROR, Severity.WARNING,
                                    Severity.INFO)}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def codes(self) -> set[str]:
        """The distinct codes present."""
        return {d.code for d in self.diagnostics}

    def by_code(self, code: str) -> list[Diagnostic]:
        """All diagnostics with exactly ``code``."""
        return [d for d in self.diagnostics if d.code == code]

    def filter(self, min_severity: "Severity | str | None" = None,
               codes: Iterable[str] | None = None) -> "DiagnosticReport":
        """A new report keeping diagnostics at/above ``min_severity`` whose
        code matches ``codes`` (exact codes or prefixes like ``"IR"``)."""
        kept = self.diagnostics
        if min_severity is not None:
            floor = Severity.parse(min_severity)
            kept = [d for d in kept if d.severity >= floor]
        if codes is not None:
            wanted = list(codes)
            kept = [d for d in kept
                    if any(d.code == c or d.code.startswith(c) for c in wanted)]
        return DiagnosticReport(self.subject, kept)

    def sorted(self) -> "DiagnosticReport":
        """A new report ordered most-severe-first (stable within severity)."""
        return DiagnosticReport(
            self.subject, sorted(self.diagnostics, key=Diagnostic.sort_key)
        )

    def fails(self, threshold: "Severity | str" = Severity.ERROR) -> bool:
        """True when any diagnostic is at or above ``threshold``."""
        floor = Severity.parse(threshold)
        return any(d.severity >= floor for d in self.diagnostics)

    def raise_if(self, threshold: "Severity | str" = Severity.ERROR) -> None:
        """Raise :class:`~repro.errors.AnalysisError` when :meth:`fails`."""
        if self.fails(threshold):
            from ..errors import AnalysisError

            raise AnalysisError(self.summary_line(), report=self)

    # -- rendering ------------------------------------------------------
    def summary_line(self) -> str:
        counts = self.counts()
        subject = f"{self.subject}: " if self.subject else ""
        return (f"{subject}{counts['error']} error(s), "
                f"{counts['warning']} warning(s), {counts['info']} info(s)")

    def render_text(self) -> str:
        """Multi-line human-readable report (sorted, summary last)."""
        lines = [d.render() for d in self.sorted()]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Schema-stable dict (see ``docs/diagnostics.md``)."""
        return {
            "schema": SCHEMA_VERSION,
            "subject": self.subject,
            "summary": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def messages(self) -> list[str]:
        """Bare message strings, in insertion order (wrapper compatibility)."""
        return [d.message for d in self.diagnostics]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DiagnosticReport({self.subject!r}, {self.counts()})"

"""MILP model rules (codes ``MILP0xx``).

These inspect a built :class:`repro.milp.model.Model` *before* it is handed
to a backend, catching modeling bugs that would otherwise surface as an
opaque solver failure (or worse, as a silently wrong incumbent): constraints
that can never hold, variables that cannot influence anything, objectives
that are unbounded by construction, and numerically unusable coefficients.
"""

from __future__ import annotations

import math
from typing import Iterator

from .diagnostic import Diagnostic, Severity
from .registry import AnalysisContext, finding, register

_TOL = 1e-9


@register("MILP001", "trivially-infeasible-constraint", "model",
          Severity.ERROR,
          "A constraint contains no variables and its constant violates "
          "its sense; the model can never be feasible.")
def trivially_infeasible(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for i, con in enumerate(ctx.model.constraints):
        if any(abs(c) > _TOL for c in con.expr.coeffs.values()):
            continue
        k = con.expr.constant
        bad = ((con.sense == "<=" and k > _TOL)
               or (con.sense == ">=" and k < -_TOL)
               or (con.sense == "==" and abs(k) > _TOL))
        if bad:
            yield finding(
                f"constraint {con.name or f'c{i}'} reduces to "
                f"{k:g} {con.sense} 0 and can never hold",
                constraint=con.name or f"c{i}",
                hint="two constants were probably compared while building "
                     "the expression",
            )


@register("MILP002", "unused-variable", "model", Severity.WARNING,
          "A variable appears in no constraint and not in the objective.")
def unused_variable(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    model = ctx.model
    used: set[int] = {i for i, c in model.objective.coeffs.items()
                      if abs(c) > _TOL}
    for con in model.constraints:
        used.update(i for i, c in con.expr.coeffs.items() if abs(c) > _TOL)
    for var in model.variables:
        if var.index not in used:
            yield finding(
                f"variable {var.name} ({var.kind}) appears in no "
                "constraint or objective",
                constraint=var.name,
                hint="dead variables bloat the relaxation for nothing",
            )


@register("MILP003", "unbounded-objective", "model", Severity.ERROR,
          "The objective can improve without limit along an "
          "unconstrained variable.")
def unbounded_objective(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    model = ctx.model
    constrained: set[int] = set()
    for con in model.constraints:
        constrained.update(i for i, c in con.expr.coeffs.items()
                           if abs(c) > _TOL)
    sign = 1.0 if model.sense == "min" else -1.0
    for idx, coeff in model.objective.coeffs.items():
        if abs(coeff) <= _TOL or idx in constrained:
            continue
        var = model.variables[idx]
        improving = sign * coeff
        if improving < 0 and math.isinf(var.hi):
            direction = "+inf"
        elif improving > 0 and math.isinf(var.lo):
            direction = "-inf"
        else:
            continue
        yield finding(
            f"objective improves without bound by driving {var.name} "
            f"to {direction} (no constraint touches it)",
            constraint=var.name,
            hint="add the missing constraint or bound the variable",
        )


@register("MILP004", "non-finite-coefficient", "model", Severity.ERROR,
          "A constraint or objective contains a NaN or infinite "
          "coefficient/constant.")
def non_finite_coefficient(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    model = ctx.model

    def bad(values) -> bool:
        return any(not math.isfinite(v) for v in values)

    if bad(model.objective.coeffs.values()) or \
            not math.isfinite(model.objective.constant):
        yield finding("objective contains a non-finite coefficient",
                      constraint="objective")
    for i, con in enumerate(model.constraints):
        if bad(con.expr.coeffs.values()) or \
                not math.isfinite(con.expr.constant):
            yield finding(
                f"constraint {con.name or f'c{i}'} contains a non-finite "
                "coefficient",
                constraint=con.name or f"c{i}",
            )


@register("MILP005", "duplicate-constraint", "model", Severity.INFO,
          "Two constraints are identical after normalization.")
def duplicate_constraint(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    seen: dict[tuple, str] = {}
    for i, con in enumerate(ctx.model.constraints):
        key = (con.sense,
               round(con.expr.constant, 9),
               tuple(sorted((idx, round(c, 9))
                            for idx, c in con.expr.coeffs.items()
                            if abs(c) > _TOL)))
        name = con.name or f"c{i}"
        if key in seen:
            yield finding(
                f"constraint {name} duplicates {seen[key]}",
                constraint=name,
                hint="duplicates are harmless but slow the solver",
            )
        else:
            seen[key] = name

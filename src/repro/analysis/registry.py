"""Rule protocol and registry.

A rule is a function from an :class:`AnalysisContext` to an iterable of
:class:`~repro.analysis.diagnostic.Diagnostic`, registered under a stable
code with :func:`register`. The registry is the single source of truth for
codes, default severities, targets (what kind of artifact the rule reads)
and gates (which prerequisite findings make the rule meaningless to run —
e.g. schedule-timing rules cannot run while nodes are unscheduled).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol

from ..errors import AnalysisError
from .diagnostic import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover
    from ..ir.graph import CDFG
    from ..milp.model import Model
    from ..scheduling.schedule import Schedule
    from ..tech.device import Device

__all__ = ["AnalysisContext", "Rule", "RuleCheck", "register", "rule_for",
           "all_rules", "rules_for_target", "TARGETS", "GATE_WELLFORMED",
           "GATE_ACYCLIC", "GATE_SCHEDULED"]

#: Artifact kinds a rule can analyze.
TARGETS = ("cdfg", "schedule", "model")

#: Gate names: a rule with a gate is skipped when the named precondition
#: was violated by an earlier rule of the same run.
GATE_WELLFORMED = "wellformed"  # every operand source exists (IR001 clean)
GATE_ACYCLIC = "acyclic"        # distance-0 edges form a DAG (IR006 clean)
GATE_SCHEDULED = "scheduled"    # every node has a cycle (SCH001 clean)


@dataclass
class AnalysisContext:
    """Everything a rule may look at. Fields are populated per target:
    ``cdfg`` rules get ``graph``; ``schedule`` rules get ``schedule`` (and
    ``graph`` for convenience) plus ``device``; ``model`` rules get
    ``model``. ``options`` carries linter tuning knobs (sampling budgets)."""

    graph: "CDFG | None" = None
    schedule: "Schedule | None" = None
    device: "Device | None" = None
    model: "Model | None" = None
    options: dict[str, Any] = field(default_factory=dict)


class RuleCheck(Protocol):
    """The callable shape of a rule body."""

    def __call__(self, ctx: AnalysisContext) -> Iterable[Diagnostic]:
        ...  # pragma: no cover


@dataclass(frozen=True)
class Rule:
    """A registered rule: metadata plus the check callable."""

    code: str
    name: str
    target: str
    severity: Severity
    description: str
    check: RuleCheck
    gate: str | None = None
    #: Gate this rule *establishes* when it reports nothing (see linter).
    establishes: str | None = None

    def run(self, ctx: AnalysisContext,
            severity: Severity | None = None) -> list[Diagnostic]:
        """Execute the check, stamping code/rule/severity onto findings."""
        eff = severity or self.severity
        out = []
        for diag in self.check(ctx):
            out.append(Diagnostic(
                code=self.code, severity=eff, message=diag.message,
                rule=self.name, node=diag.node, nodes=diag.nodes,
                edge=diag.edge, constraint=diag.constraint, hint=diag.hint,
            ))
        return out


_REGISTRY: dict[str, Rule] = {}


def register(code: str, name: str, target: str, severity: Severity,
             description: str, gate: str | None = None,
             establishes: str | None = None) -> Callable[[RuleCheck], RuleCheck]:
    """Decorator registering a rule body under a stable ``code``."""
    if target not in TARGETS:
        raise AnalysisError(f"rule {code}: unknown target {target!r}")

    def deco(fn: RuleCheck) -> RuleCheck:
        if code in _REGISTRY:
            raise AnalysisError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code=code, name=name, target=target,
                               severity=severity, description=description,
                               check=fn, gate=gate, establishes=establishes)
        return fn

    return deco


def finding(message: str, node: int | None = None,
            nodes: Iterable[int] = (), edge: tuple[int, int] | None = None,
            constraint: str | None = None,
            hint: str | None = None) -> Diagnostic:
    """Build a partially-filled diagnostic inside a rule body.

    Code, rule name and severity are stamped by :meth:`Rule.run`, so rule
    bodies only state *what* they found and *where*.
    """
    return Diagnostic(code="", severity=Severity.INFO, message=message,
                      node=node, nodes=tuple(nodes), edge=edge,
                      constraint=constraint, hint=hint)


def rule_for(code: str) -> Rule:
    """Look up a rule by code (raises :class:`AnalysisError` if unknown)."""
    try:
        return _REGISTRY[code]
    except KeyError:
        raise AnalysisError(
            f"unknown diagnostic code {code!r}; known: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by code."""
    return [_REGISTRY[c] for c in sorted(_REGISTRY)]


def rules_for_target(target: str) -> list[Rule]:
    """Registered rules for one artifact kind, ordered by code."""
    return [r for r in all_rules() if r.target == target]

"""Suppression baselines: fail CI only on *new* diagnostics.

A baseline is a JSON file of fingerprints — stable ``subject:code:location``
strings — for every finding present when it was written. Later runs
subtract the baseline, so pre-existing debt doesn't block a pipeline while
every newly introduced finding still does (``python -m repro lint
--write-baseline FILE`` to record, ``--baseline FILE`` to compare).

Fingerprints deliberately exclude the message text: messages carry values
("slack 0.43ns") that change benignly; the (subject, code, anchor) triple
is what identifies "the same finding".
"""

from __future__ import annotations

import json

from ..errors import AnalysisError
from .diagnostic import Diagnostic, DiagnosticReport

__all__ = ["BASELINE_SCHEMA", "fingerprint", "write_baseline",
           "load_baseline", "suppress"]

#: Version tag embedded in every baseline file; bump on breaking changes.
BASELINE_SCHEMA = "repro-lint-baseline/v1"


def fingerprint(diag: Diagnostic) -> str:
    """The stable identity of a finding: ``subject:code:location``."""
    if diag.node is not None:
        loc = f"node{diag.node}"
    elif diag.edge is not None:
        loc = f"edge{diag.edge[0]}->{diag.edge[1]}"
    elif diag.constraint is not None:
        loc = f"constraint:{diag.constraint}"
    else:
        loc = "-"
    return f"{diag.subject or '-'}:{diag.code}:{loc}"


def write_baseline(path: str, reports: list[DiagnosticReport]) -> int:
    """Record every current finding; returns how many were written."""
    prints = sorted({fingerprint(d) for r in reports for d in r})
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": BASELINE_SCHEMA, "fingerprints": prints},
                  handle, indent=2)
        handle.write("\n")
    return len(prints)


def load_baseline(path: str) -> set[str]:
    """Load a baseline file, validating its schema tag."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or data.get("schema") != BASELINE_SCHEMA:
        raise AnalysisError(
            f"{path}: not a lint baseline (expected schema "
            f"{BASELINE_SCHEMA!r}, got {data.get('schema')!r})"
        )
    prints = data.get("fingerprints", [])
    if not all(isinstance(p, str) for p in prints):
        raise AnalysisError(f"{path}: fingerprints must be strings")
    return set(prints)


def suppress(reports: list[DiagnosticReport],
             baseline: set[str]) -> list[DiagnosticReport]:
    """New reports with baselined findings removed (inputs untouched)."""
    return [
        DiagnosticReport(r.subject,
                         [d for d in r if fingerprint(d) not in baseline])
        for r in reports
    ]

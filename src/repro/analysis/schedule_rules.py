"""Schedule + cover rules (codes ``SCH0xx``).

``SCH001``–``SCH010`` are the historical
:func:`repro.core.verify.schedule_problems` constraint families, one rule per
family, with byte-identical message strings (the wrapper depends on it).
``SCH011``+ are new: cover-legality duplication and recurrence-slack
warnings.

All rules except ``SCH001`` are gated on the schedule being complete —
timing math on an unscheduled node would raise, not diagnose.
"""

from __future__ import annotations

import math
from typing import Iterator

import networkx as nx

from ..ir.types import OpKind
from ..scheduling.schedule import Schedule
from ..tech.delay import DelayModel
from .diagnostic import Diagnostic, Severity
from .registry import GATE_SCHEDULED, AnalysisContext, finding, register

_TOL = 1e-6


def _delay_model(ctx: AnalysisContext) -> DelayModel:
    return DelayModel(ctx.device, ctx.schedule.graph)


def _impl_delay(schedule: Schedule, model: DelayModel, nid: int) -> float:
    node = schedule.graph.node(nid)
    cut = schedule.cover.get(nid)
    if cut is None:
        return 0.0
    return model.cut_delay(node, cut)


def _abs_start(schedule: Schedule, nid: int) -> float:
    return schedule.cycle[nid] * schedule.tcp + schedule.start.get(nid, 0.0)


def _valid_cover_items(schedule: Schedule):
    """Cover entries whose cut actually belongs to its key (SCH002 clean)."""
    return [(nid, cut) for nid, cut in schedule.cover.items()
            if cut.root == nid]


@register("SCH001", "unscheduled-node", "schedule", Severity.ERROR,
          "A non-constant node has no pipeline cycle assigned.",
          establishes=GATE_SCHEDULED)
def unscheduled_node(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    for node in schedule.graph:
        if node.kind is OpKind.CONST:
            continue
        if node.nid not in schedule.cycle:
            yield finding(f"node {node.nid} is unscheduled", node=node.nid)


@register("SCH002", "cover-root-mismatch", "schedule", Severity.ERROR,
          "A cover entry stores a cut belonging to a different node.",
          gate=GATE_SCHEDULED)
def cover_root_mismatch(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    for nid, cut in ctx.schedule.cover.items():
        if cut.root != nid:
            yield finding(f"cover[{nid}] is a cut of node {cut.root}",
                          node=nid)


@register("SCH003", "infeasible-cut", "schedule", Severity.ERROR,
          "A selected non-unit cut exceeds the device's LUT input count K.",
          gate=GATE_SCHEDULED)
def infeasible_cut(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule, device = ctx.schedule, ctx.device
    for nid, cut in _valid_cover_items(schedule):
        node = schedule.graph.node(nid)
        if node.is_mappable and not cut.is_unit and not cut.feasible(device.k):
            yield finding(
                f"root {nid} selected an infeasible non-unit cut "
                f"(support {cut.max_support} > K={device.k})",
                node=nid,
                hint=f"re-enumerate cuts for K={device.k} or pick the "
                     "unit cut",
            )


@register("SCH004", "cut-input-not-root", "schedule", Severity.ERROR,
          "A cut's boundary value is produced by a node that is not "
          "itself a root.", gate=GATE_SCHEDULED)
def cut_input_not_root(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    graph = schedule.graph
    for nid, cut in _valid_cover_items(schedule):
        for u in cut.boundary:
            un = graph.node(u)
            if un.kind in (OpKind.CONST, OpKind.INPUT):
                continue
            if u not in schedule.cover:
                yield finding(
                    f"cut input {u} of root {nid} is not itself a root",
                    node=nid,
                    edge=(u, nid),
                )


@register("SCH005", "uncovered-operation", "schedule", Severity.ERROR,
          "A mappable operation belongs to no selected cone.",
          gate=GATE_SCHEDULED)
def uncovered_operation(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    covered: set[int] = set()
    for nid, cut in _valid_cover_items(schedule):
        covered.add(nid)
        covered.update(cut.interior)
    for node in schedule.graph:
        if not node.is_mappable:
            continue
        if node.nid not in covered:
            yield finding(
                f"operation {node.nid} is not covered by any cone",
                node=node.nid,
            )


@register("SCH006", "interior-not-cotimed", "schedule", Severity.ERROR,
          "A node absorbed into a cone is not timed with the cone's root.",
          gate=GATE_SCHEDULED)
def interior_not_cotimed(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    for nid, cut in schedule.cover.items():
        for w in cut.interior:
            if w not in schedule.cycle:
                continue
            if schedule.cycle[w] != schedule.cycle[nid] or \
                    abs(schedule.start.get(w, 0.0)
                        - schedule.start.get(nid, 0.0)) > 1e-4:
                yield finding(
                    f"interior node {w} not co-timed with root {nid}",
                    node=w,
                    edge=(w, nid),
                )


@register("SCH007", "cycle-budget-exceeded", "schedule", Severity.ERROR,
          "A root's start time plus implementation delay exceeds the "
          "clock period (Eq. 8).", gate=GATE_SCHEDULED)
def cycle_budget_exceeded(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    model = _delay_model(ctx)
    tcp = schedule.tcp
    for nid in schedule.cover:
        lv = schedule.start.get(nid, 0.0)
        d = _impl_delay(schedule, model, nid)
        if lv + d > tcp + _TOL:
            yield finding(
                f"root {nid}: start {lv:.3f} + delay {d:.3f} exceeds "
                f"Tcp {tcp:.3f}",
                node=nid,
            )


@register("SCH008", "chaining-violation", "schedule", Severity.ERROR,
          "A cone starts before one of its entry values has finished "
          "(Eq. 9).", gate=GATE_SCHEDULED)
def chaining_violation(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    graph = schedule.graph
    model = _delay_model(ctx)
    tcp, ii = schedule.tcp, schedule.ii
    for nid, cut in schedule.cover.items():
        for u, dist in cut.entries:
            un = graph.node(u)
            if un.kind is OpKind.CONST:
                continue
            u_finish = _abs_start(schedule, u) + _impl_delay(schedule, model, u)
            v_start = _abs_start(schedule, nid) + tcp * ii * dist
            if u_finish > v_start + _TOL:
                yield finding(
                    f"entry {u}@{dist} of root {nid} finishes at "
                    f"{u_finish:.3f} after the cone starts at {v_start:.3f}",
                    node=nid,
                    edge=(u, nid),
                )


@register("SCH009", "dependence-violation", "schedule", Severity.ERROR,
          "A dependence edge is scheduled backwards against its "
          "iteration distance (Eq. 7).", gate=GATE_SCHEDULED)
def dependence_violation(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    graph = schedule.graph
    ii = schedule.ii
    for node in graph:
        if node.kind is OpKind.CONST:
            continue
        for op in node.operands:
            if graph.node(op.source).kind is OpKind.CONST:
                continue
            if schedule.cycle[op.source] > schedule.cycle[node.nid] \
                    + ii * op.distance:
                yield finding(
                    f"dependence {op.source} -> {node.nid} "
                    f"(distance {op.distance}) violated",
                    node=node.nid,
                    edge=(op.source, node.nid),
                )


@register("SCH010", "resource-oversubscribed", "schedule", Severity.ERROR,
          "A black-box resource class is oversubscribed in some modulo "
          "slot (Eq. 14).", gate=GATE_SCHEDULED)
def resource_oversubscribed(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule, device = ctx.schedule, ctx.device
    ii = schedule.ii
    usage: dict[tuple[str, int], int] = {}
    for node in schedule.graph:
        if node.is_blackbox and node.rclass:
            slot = schedule.cycle[node.nid] % ii
            usage[(node.rclass, slot)] = usage.get((node.rclass, slot), 0) + 1
    for (rclass, slot), used in usage.items():
        cap = device.blackbox_counts.get(rclass)
        if cap is not None and used > cap:
            yield finding(
                f"resource {rclass}: {used} ops in modulo slot {slot} "
                f"but only {cap} available",
                constraint=rclass,
            )


@register("SCH011", "duplicated-logic", "schedule", Severity.INFO,
          "An operation is computed inside more than one cone "
          "(logic duplication inflates area).", gate=GATE_SCHEDULED)
def duplicated_logic(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule = ctx.schedule
    computed_in: dict[int, list[int]] = {}
    for nid, cut in _valid_cover_items(schedule):
        computed_in.setdefault(nid, []).append(nid)
        for w in cut.interior:
            computed_in.setdefault(w, []).append(nid)
    for w, roots in sorted(computed_in.items()):
        if len(roots) > 1:
            width = schedule.graph.node(w).width
            yield finding(
                f"node {w} is computed in {len(roots)} cones "
                f"(roots {sorted(roots)}); {width * (len(roots) - 1)} "
                "LUT bits are duplicated",
                node=w,
                nodes=sorted(roots),
                hint="duplication can be intentional (fan-out splitting) "
                     "but distorts per-cone area accounting",
            )


@register("SCH012", "recurrence-slack", "schedule", Severity.WARNING,
          "A recurrence cycle has less than one LUT level of slack: the "
          "II is within one logic level of infeasible.",
          gate=GATE_SCHEDULED)
def recurrence_slack(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    schedule, device = ctx.schedule, ctx.device
    graph = schedule.graph
    model = _delay_model(ctx)
    max_cycles = int(ctx.options.get("recurrence_cycle_cap", 1000))

    simple = nx.DiGraph()
    for node in graph:
        for op in node.operands:
            if op.source not in graph:
                continue
            if simple.has_edge(op.source, node.nid):
                old = simple[op.source][node.nid]["distance"]
                simple[op.source][node.nid]["distance"] = min(old, op.distance)
            else:
                simple.add_edge(op.source, node.nid, distance=op.distance)

    count = 0
    for cyc in nx.simple_cycles(simple):
        count += 1
        if count > max_cycles:
            break
        total_dist = 0
        for i, u in enumerate(cyc):
            v = cyc[(i + 1) % len(cyc)]
            total_dist += simple[u][v]["distance"]
        if total_dist == 0:
            continue  # combinational cycle: an IR006 error, not a slack issue
        total_delay = sum(_impl_delay(schedule, model, nid) for nid in cyc)
        budget = schedule.ii * total_dist * schedule.tcp
        slack = budget - total_delay
        if 0.0 <= slack < device.lut_level_delay:
            members = sorted(cyc)
            yield finding(
                f"recurrence through nodes {members[:10]} has "
                f"{slack:.3f} ns slack out of {budget:.3f} ns "
                f"(< one LUT level, {device.lut_level_delay:.3f} ns): "
                f"II={schedule.ii} is within one logic level of infeasible",
                node=members[0],
                nodes=members[:10],
                hint="any delay growth on this loop forces a higher II; "
                     "consider retiming or relaxing the target clock",
            )

"""Pass-based static analysis with stable diagnostic codes.

The analysis engine turns the library's correctness knowledge into
machine-readable, per-rule-controllable diagnostics:

* :class:`Diagnostic` / :class:`DiagnosticReport` — findings with stable
  codes (``IR006``, ``SCH003``, ``MILP001``...), severities, locations and
  fix hints; reports filter, sort and render as text or schema-stable JSON.
* :mod:`~repro.analysis.registry` — the rule protocol: every rule is a
  registered pass with a code, default severity, target artifact and gate.
* :class:`Linter` — the driver: select/ignore codes, override severities,
  run over a :class:`~repro.ir.graph.CDFG`, a
  :class:`~repro.scheduling.schedule.Schedule` + cover, or a built
  :class:`~repro.milp.model.Model`.

``docs/diagnostics.md`` tables every code. The historical string-based
checkers (:func:`repro.ir.validate.check_problems`,
:func:`repro.core.verify.schedule_problems`) are thin wrappers over these
rules and keep their exact output.
"""

from .diagnostic import SCHEMA_VERSION, Diagnostic, DiagnosticReport, Severity
from .registry import (
    AnalysisContext,
    Rule,
    all_rules,
    register,
    rule_for,
    rules_for_target,
)

# Importing the rule modules registers their rules (import order defines
# nothing: execution order is by code).
from . import dep_rules as _dep_rules  # noqa: F401,E402
from . import ir_rules as _ir_rules  # noqa: F401,E402
from . import milp_rules as _milp_rules  # noqa: F401,E402
from . import schedule_rules as _schedule_rules  # noqa: F401,E402
from .dataflow import rules as _dataflow_rules  # noqa: F401,E402
from .equiv import rules as _equiv_rules  # noqa: F401,E402

from .linter import Linter, lint_graph, lint_model, lint_schedule  # noqa: E402

__all__ = [
    "AnalysisContext",
    "Diagnostic",
    "DiagnosticReport",
    "Linter",
    "Rule",
    "SCHEMA_VERSION",
    "Severity",
    "all_rules",
    "lint_graph",
    "lint_model",
    "lint_schedule",
    "register",
    "rule_for",
    "rules_for_target",
]

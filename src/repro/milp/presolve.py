"""Backend-independent MILP presolve (model reduction before the solve).

CPLEX spends a large fraction of its time in presolve for a reason: the
scheduling MILPs built by :mod:`repro.core.formulation` are full of
structure a reduction pass can exploit before *any* LP is solved —
forced-root constraints fix cut-selection binaries outright, one-hot
assignment rows collapse once a member is fixed, big-M chain rows carry
coefficients far larger than their row can ever need, and singleton rows
are really just variable bounds in disguise.

:func:`presolve` applies a fixpoint of safe, optimum-preserving
reductions to a :class:`~repro.milp.model.Model`:

* **one-hot groups** — equality rows ``sum(x) == 1`` over binaries are
  detected once and every later activity bound treats the group as
  "exactly one member is 1" instead of "all members may be 1". This is
  what makes the remaining reductions bite on scheduling models, where
  ``S_v = sum_t t*s_{v,t}`` terms would otherwise make every activity
  bound hopelessly loose;
* **bound propagation** — (group-aware) activity bounds of each row
  tighten variable bounds, fix binaries whose selection would violate a
  row (schedule-window reduction), and round integer bounds; a variable
  whose bounds meet is *fixed* and substituted out of every row;
* **singleton elimination** — a row touching one variable becomes a
  bound on that variable and is dropped;
* **redundancy elimination** — a row whose worst-case activity already
  satisfies it is dropped; a row whose best-case activity violates it
  proves the model ``INFEASIBLE`` without solving anything;
* **coefficient tightening** — Savelsbergh-style reduction of binary
  coefficients in one-sided rows (equivalent on integer points, strictly
  tighter in the LP relaxation — this is what shrinks the big-M chain
  and interior-equality constraints);
* **dead-variable fixing** — a variable appearing in no remaining row is
  pinned to its objective-preferred bound.

The cut-selection fixing promised by the scheduler needs no special
case: ``cover[v] : sum c >= 1`` over a single selectable cut *is* a
singleton row, and one-hot rows collapse through ordinary propagation
once any member is fixed.

Every reduction preserves the set of optimal solutions up to the values
of substituted variables, which the returned :class:`Postsolve` restores
— :meth:`Postsolve.expand` lifts a reduced-space :class:`Solution` back
to the original variable space (objective recomputed against the
original model), and :meth:`Postsolve.restrict` projects a feasible
original-space assignment (a warm start) onto the reduced model.
Correctness is cross-checked dynamically by the ``presolve`` fuzz oracle
(see ``docs/fuzzing.md``) and statically by ``tests/test_presolve.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..vectorize import vectorize_enabled
from .model import Constraint, LinExpr, Model, Solution, SolveStatus

__all__ = ["presolve", "Postsolve", "PresolveStats"]

_INF = float("inf")
#: Feasibility tolerance for declaring rows violated/redundant. Matches
#: Model.check's default so presolve never calls infeasible a model the
#: verifier would accept.
_FEAS_TOL = 1e-6
#: Minimum bound improvement worth recording (avoids 1e-15 churn loops).
_MIN_IMPROVE = 1e-7
#: Slack added to propagated *continuous* bounds so floating-point
#: round-off in the implied bound can never cut off an optimal vertex.
_SAFETY = 1e-9


@dataclass
class PresolveStats:
    """What the reduction pass accomplished (span meta / bench rows)."""

    vars_before: int = 0
    vars_after: int = 0
    cons_before: int = 0
    cons_after: int = 0
    vars_fixed: int = 0
    rows_dropped: int = 0
    bounds_tightened: int = 0
    coeffs_tightened: int = 0
    one_hot_groups: int = 0
    rounds: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "vars_before": self.vars_before,
            "vars_after": self.vars_after,
            "cons_before": self.cons_before,
            "cons_after": self.cons_after,
            "vars_fixed": self.vars_fixed,
            "rows_dropped": self.rows_dropped,
            "bounds_tightened": self.bounds_tightened,
            "coeffs_tightened": self.coeffs_tightened,
            "one_hot_groups": self.one_hot_groups,
            "rounds": self.rounds,
        }


@dataclass
class Postsolve:
    """Inverse mapping from the reduced model back to the original.

    Attributes
    ----------
    original:
        The model :func:`presolve` was called on (never mutated).
    fixed:
        Original variable index -> value pinned during presolve.
    index_map:
        Reduced variable index -> original variable index.
    status:
        ``SolveStatus.INFEASIBLE`` when presolve proved infeasibility
        (the reduced model is then empty and must not be solved);
        ``None`` otherwise.
    stats:
        Reduction bookkeeping.
    """

    original: Model
    fixed: dict[int, float] = field(default_factory=dict)
    index_map: dict[int, int] = field(default_factory=dict)
    status: str | None = None
    stats: PresolveStats = field(default_factory=PresolveStats)

    def expand(self, solution: Solution) -> Solution:
        """Lift a reduced-space solution into original variable space."""
        if not solution.values and not solution.ok:
            # Status-only outcomes (infeasible, no-incumbent, error) carry
            # no assignment; nothing to translate.
            return Solution(
                status=solution.status, objective=solution.objective,
                values={}, solve_seconds=solution.solve_seconds,
                gap=solution.gap, message=solution.message,
                stats=dict(solution.stats),
            )
        values = dict(self.fixed)
        for reduced_idx, orig_idx in self.index_map.items():
            values[orig_idx] = solution.values.get(reduced_idx, 0.0)
        # Variables untouched by rows, objective and fixing default to an
        # in-bounds value (lo may be nonzero).
        for var in self.original.variables:
            if var.index not in values:
                values[var.index] = var.lo if math.isfinite(var.lo) else 0.0
        objective = (self.original.objective.value(values)
                     if solution.objective is not None else None)
        return Solution(
            status=solution.status, objective=objective, values=values,
            solve_seconds=solution.solve_seconds, gap=solution.gap,
            message=solution.message, stats=dict(solution.stats),
        )

    def restrict(self, values: Mapping[int, float]) -> dict[int, float]:
        """Project an original-space assignment onto the reduced model.

        Intended for warm starts: any *feasible* original assignment
        agrees with every propagation-implied fixing, so the projection
        of a feasible point stays feasible in the reduced model.
        """
        return {
            reduced_idx: float(values.get(orig_idx, 0.0))
            for reduced_idx, orig_idx in self.index_map.items()
        }


class _Row:
    """One constraint in range form: ``lo <= sum(a_j x_j) <= hi``."""

    __slots__ = ("coeffs", "lo", "hi", "name", "alive", "version")

    def __init__(self, coeffs: dict[int, float], lo: float, hi: float,
                 name: str) -> None:
        self.coeffs = coeffs
        self.lo = lo
        self.hi = hi
        self.name = name
        self.alive = True
        # Bumped whenever coeffs change (substitution, coefficient
        # tightening) so cached array snapshots know to rebuild.
        self.version = 0


#: Rows at or above this many nonzeros use the vectorized activity /
#: propagation kernels; smaller rows stay on the scalar path (array
#: setup overhead dominates below this — the scheduling models' median
#: row is under a dozen nonzeros, so only the wide chain/def rows
#: qualify). Both paths are bit-identical, so the threshold is a pure
#: tuning knob.
_VEC_MIN = 32


class _RowArrays:
    """Array snapshot of one row's coefficients (dict order preserved).

    ``idx``/``a`` mirror ``row.coeffs.items()`` at a given ``version``;
    ``glist`` lists the one-hot groups usable on this row (first
    appearance order, defining row excluded) with the member positions;
    ``tc_pos`` holds the statically coefficient-tightenable positions
    (integer kind, not a group member).
    """

    __slots__ = ("idx", "jl", "a", "pos", "glist", "tc_pos")


def _build_row_arrays(row: _Row, ridx: int, group_of: dict[int, int],
                      group_def_row: list[int],
                      is_int_arr: "np.ndarray") -> _RowArrays:
    m = len(row.coeffs)
    ce = _RowArrays()
    ce.jl = list(row.coeffs)
    ce.idx = np.fromiter(row.coeffs.keys(), dtype=np.intp, count=m)
    ce.a = np.fromiter(row.coeffs.values(), dtype=np.float64, count=m)
    ce.pos = ce.a > 0
    gseen: dict[int, list[int]] = {}
    in_group = np.zeros(m, dtype=bool)
    for p, j in enumerate(row.coeffs):
        gid = group_of.get(j)
        if gid is None:
            continue
        in_group[p] = True
        if group_def_row[gid] != ridx:
            gseen.setdefault(gid, []).append(p)
    ce.glist = [(gid, np.asarray(ps, dtype=np.intp))
                for gid, ps in gseen.items()]
    ce.tc_pos = np.flatnonzero(is_int_arr[ce.idx] & ~in_group)
    return ce


def _row_from_constraint(con: Constraint) -> _Row:
    rhs = -con.expr.constant
    coeffs = {i: c for i, c in con.expr.coeffs.items() if c != 0.0}
    if con.sense == "<=":
        return _Row(coeffs, -_INF, rhs, con.name)
    if con.sense == ">=":
        return _Row(coeffs, rhs, _INF, con.name)
    return _Row(coeffs, rhs, rhs, con.name)


class _Activity:
    """Group-aware activity bounds of one row.

    ``min_act``/``max_act`` are valid bounds on the row's value under the
    current variable bounds *and* the one-hot invariants: a group whose
    unfixed members all appear in the row contributes exactly one of its
    coefficients; a partially present group may also contribute 0 (the
    selected member can sit outside the row).
    """

    __slots__ = ("min_act", "max_act", "group_min", "group_max")

    def __init__(self) -> None:
        self.min_act = 0.0
        self.max_act = 0.0
        self.group_min: dict[int, float] = {}
        self.group_max: dict[int, float] = {}


def presolve(model: Model,
             vectorize: bool | None = None) -> tuple[Model, Postsolve]:
    """Reduce ``model``; returns ``(reduced_model, postsolve)``.

    The input model is never mutated. When presolve proves the model
    infeasible, ``postsolve.status`` is ``SolveStatus.INFEASIBLE`` and
    the returned reduced model is empty — callers must check the status
    before solving (``Model.solve(presolve=True)`` does).

    ``vectorize`` selects the numpy inner kernels for activity bounds,
    bound propagation and coefficient tightening (``None`` defers to
    ``REPRO_VECTORIZE``). Both paths produce bit-identical reduced
    models, stats and postsolve data; the flag only trades speed.
    """
    post = Postsolve(original=model)
    stats = post.stats
    stats.vars_before = model.num_vars
    stats.cons_before = model.num_constraints

    n = model.num_vars
    lo = [float(v.lo) for v in model.variables]
    hi = [float(v.hi) for v in model.variables]
    is_int = [v.kind != "continuous" for v in model.variables]
    fixed: dict[int, float] = {}

    rows = [_row_from_constraint(con) for con in model.constraints]
    # Column adjacency: variable index -> rows that touch it. Kept in
    # sync as substitution removes entries.
    columns: dict[int, set[int]] = {j: set() for j in range(n)}
    for r, row in enumerate(rows):
        for j in row.coeffs:
            columns.setdefault(j, set()).add(r)

    # One-hot groups: sum(x) == 1 over binaries. group_of maps a member
    # to its group id; group_left counts unfixed members; group_done
    # marks a group whose 1 has been chosen (remaining members collapse
    # to 0 through ordinary propagation of the defining row).
    group_of: dict[int, int] = {}
    group_left: list[int] = []
    group_done: list[bool] = []
    group_def_row: list[int] = []
    for r, row in enumerate(rows):
        if not (row.lo == 1.0 and row.hi == 1.0 and len(row.coeffs) >= 2):
            continue
        members = list(row.coeffs)
        if any(row.coeffs[j] != 1.0 or not is_int[j]
               or lo[j] != 0.0 or hi[j] != 1.0 or j in group_of
               for j in members):
            continue
        gid = len(group_left)
        group_left.append(len(members))
        group_done.append(False)
        group_def_row.append(r)
        for j in members:
            group_of[j] = gid
    stats.one_hot_groups = len(group_left)

    use_vec = vectorize_enabled(vectorize)
    # The bound lists stay the only copy (scalar code keeps cheap
    # Python-float arithmetic and there is no write-through to pay on
    # every tighten); vector kernels gather the few bounds they need
    # per row instead.
    is_int_arr = np.asarray(is_int, dtype=bool) if use_vec else None

    row_cache: dict[int, tuple[int, _RowArrays]] = {}

    def row_arrays(r: int, row: _Row) -> _RowArrays:
        hit = row_cache.get(r)
        if hit is not None and hit[0] == row.version:
            return hit[1]
        ce = _build_row_arrays(row, r, group_of, group_def_row, is_int_arr)
        row_cache[r] = (row.version, ce)
        return ce

    def infeasible() -> tuple[Model, Postsolve]:
        post.status = SolveStatus.INFEASIBLE
        stats.vars_after = 0
        stats.cons_after = 0
        return Model(f"{model.name}[presolved:infeasible]"), post

    def snap_int(j: int) -> bool:
        """Round integer bounds inward; False when the domain empties."""
        if is_int[j]:
            if math.isfinite(lo[j]):
                lo[j] = math.ceil(lo[j] - _FEAS_TOL)
            if math.isfinite(hi[j]):
                hi[j] = math.floor(hi[j] + _FEAS_TOL)
        return hi[j] >= lo[j] - _FEAS_TOL

    def fix_var(j: int, value: float) -> None:
        """Pin ``j`` and substitute it out of every row it appears in."""
        # Plain float: the value lands in Postsolve.fixed and from there
        # in Solution.values, which must stay JSON-serializable.
        value = float(round(value)) if is_int[j] else float(value)
        fixed[j] = value
        lo[j] = hi[j] = value
        stats.vars_fixed += 1
        gid = group_of.pop(j, None)
        if gid is not None:
            group_left[gid] -= 1
            if value >= 0.5:
                group_done[gid] = True
        for r in list(columns.get(j, ())):
            row = rows[r]
            coeff = row.coeffs.pop(j, 0.0)
            row.version += 1
            if coeff:
                if math.isfinite(row.lo):
                    row.lo -= coeff * value
                if math.isfinite(row.hi):
                    row.hi -= coeff * value
            columns[j].discard(r)
            dirty.add(r)
        columns[j] = set()

    def tighten(j: int, new_lo: float | None, new_hi: float | None) -> bool:
        """Apply implied bounds; False signals an empty domain."""
        if j in fixed:
            return True
        changed = False
        if new_lo is not None and new_lo > lo[j] + _MIN_IMPROVE:
            lo[j] = new_lo if is_int[j] else new_lo - _SAFETY
            changed = True
        if new_hi is not None and new_hi < hi[j] - _MIN_IMPROVE:
            hi[j] = new_hi if is_int[j] else new_hi + _SAFETY
            changed = True
        if not changed:
            return True
        stats.bounds_tightened += 1
        if not snap_int(j):
            return False
        if hi[j] - lo[j] <= _FEAS_TOL:
            fix_var(j, (lo[j] + hi[j]) / 2.0)
        else:
            for r in columns.get(j, ()):
                dirty.add(r)
        return True

    def activity_vec(row: _Row, ridx: int) -> _Activity:
        """Array twin of :func:`activity` — bit-identical results.

        Per-entry contributions are two elementwise products; the sums
        use ``cumsum`` (a strictly sequential left fold, so the float
        rounding matches the scalar accumulation term for term). The
        leading ``0.0 +`` mirrors the scalar path's ``0.0`` seed, which
        matters only for the sign of an exactly-zero total.
        """
        ce = row_arrays(ridx, row)
        act = _Activity()
        live = [(gid, pos) for gid, pos in ce.glist if not group_done[gid]]
        plain = None
        if live:
            as_group = np.zeros(len(ce.idx), dtype=bool)
            for _, pos in live:
                as_group[pos] = True
            plain = ~as_group
        with np.errstate(all="ignore"):
            lo_g = np.array([lo[j] for j in ce.jl], dtype=np.float64)
            hi_g = np.array([hi[j] for j in ce.jl], dtype=np.float64)
            cmin = np.where(ce.pos, ce.a * lo_g, ce.a * hi_g)
            cmax = np.where(ce.pos, ce.a * hi_g, ce.a * lo_g)
            if plain is not None:
                cmin = cmin[plain]
                cmax = cmax[plain]
            min_act = 0.0 + cmin.cumsum()[-1] if cmin.size else 0.0
            max_act = 0.0 + cmax.cumsum()[-1] if cmax.size else 0.0
        for gid, pos in live:
            cs = ce.a[pos]
            cs_min, cs_max = cs.min(), cs.max()
            if len(cs) == group_left[gid]:
                gmin, gmax = cs_min, cs_max
            else:
                # The selected member may sit outside this row.
                gmin, gmax = min(0.0, cs_min), max(0.0, cs_max)
            act.group_min[gid] = gmin
            act.group_max[gid] = gmax
            min_act += gmin
            max_act += gmax
        act.min_act = min_act
        act.max_act = max_act
        return act

    def propagate_rest(row: _Row, act: _Activity, ce: _RowArrays,
                       start: int) -> bool:
        """Scalar propagation over the snapshot tail ``ce[start:]``.

        Entered when a substitution fires mid-row: ``fix_var`` rewrote
        the row's coefficients and rhs, so the batched residuals are
        stale — exactly like the scalar loop, the remaining entries must
        read the live row state.
        """
        for p in range(start, len(ce.idx)):
            j = int(ce.idx[p])
            a = float(ce.a[p])
            if j in fixed:
                continue
            gid = group_of.get(j)
            if gid is not None and gid in act.group_min:
                rest_min = act.min_act - act.group_min[gid]
                rest_max = act.max_act - act.group_max[gid]
                cannot_be_one = (
                    (math.isfinite(row.hi) and math.isfinite(rest_min)
                     and a > row.hi - rest_min + _FEAS_TOL)
                    or (math.isfinite(row.lo) and math.isfinite(rest_max)
                        and a < row.lo - rest_max - _FEAS_TOL)
                )
                if cannot_be_one:
                    if not tighten(j, None, 0.0):
                        return False
                continue
            contrib_min = a * lo[j] if a > 0 else a * hi[j]
            contrib_max = a * hi[j] if a > 0 else a * lo[j]
            rest_min = act.min_act - contrib_min
            rest_max = act.max_act - contrib_max
            new_lo = new_hi = None
            if math.isfinite(row.hi) and math.isfinite(rest_min):
                implied = (row.hi - rest_min) / a
                if a > 0:
                    new_hi = implied
                else:
                    new_lo = implied
            if math.isfinite(row.lo) and math.isfinite(rest_max):
                implied = (row.lo - rest_max) / a
                if a > 0:
                    new_lo = implied
                else:
                    new_hi = implied
            if not tighten(j, new_lo, new_hi):
                return False
        return True

    def propagate_vec(row: _Row, ridx: int, act: _Activity) -> bool:
        """Batched bound propagation; False signals infeasibility.

        Computes every entry's implied bounds and the tighten trigger
        condition in one pass, then calls :func:`tighten` only for
        entries that will actually change something — in snapshot order,
        so side effects (stats, dirty sets, fixes) replay exactly. Valid
        because entry ``j``'s residuals depend only on the batch-start
        activity and ``j``'s own bounds: a tighten of an earlier entry
        cannot perturb a later one. A ``fix_var`` can (it rewrites the
        row), so the first fix falls back to :func:`propagate_rest`.
        """
        ce = row_arrays(ridx, row)
        m = len(ce.idx)
        a_arr = ce.a
        rlo, rhi = row.lo, row.hi
        lo_g = np.array([lo[j] for j in ce.jl], dtype=np.float64)
        hi_g = np.array([hi[j] for j in ce.jl], dtype=np.float64)
        false_ = np.zeros(m, dtype=bool)
        as_group = np.zeros(m, dtype=bool)
        gmin_e = gmax_e = None
        if ce.glist and act.group_min:
            gmin_e = np.zeros(m)
            gmax_e = np.zeros(m)
            for gid, pos in ce.glist:
                gm = act.group_min.get(gid)
                if gm is not None:
                    as_group[pos] = True
                    gmin_e[pos] = gm
                    gmax_e[pos] = act.group_max[gid]
        with np.errstate(all="ignore"):
            cannot = false_
            if gmin_e is not None:
                rest_min_g = act.min_act - gmin_e
                rest_max_g = act.max_act - gmax_e
                c = np.zeros(m, dtype=bool)
                if math.isfinite(rhi):
                    c |= (np.isfinite(rest_min_g)
                          & (a_arr > (rhi - rest_min_g) + _FEAS_TOL))
                if math.isfinite(rlo):
                    c |= (np.isfinite(rest_max_g)
                          & (a_arr < (rlo - rest_max_g) - _FEAS_TOL))
                cannot = as_group & c
            cmin = np.where(ce.pos, a_arr * lo_g, a_arr * hi_g)
            cmax = np.where(ce.pos, a_arr * hi_g, a_arr * lo_g)
            rest_min = act.min_act - cmin
            rest_max = act.max_act - cmax
            if math.isfinite(rhi):
                v1 = np.isfinite(rest_min)
                imp1 = (rhi - rest_min) / a_arr
            else:
                v1, imp1 = false_, 0.0
            if math.isfinite(rlo):
                v2 = np.isfinite(rest_max)
                imp2 = (rlo - rest_max) / a_arr
            else:
                v2, imp2 = false_, 0.0
            valid_hi = np.where(ce.pos, v1, v2)
            new_hi = np.where(ce.pos, imp1, imp2)
            valid_lo = np.where(ce.pos, v2, v1)
            new_lo = np.where(ce.pos, imp2, imp1)
            flag = ~as_group & (
                (valid_lo & (new_lo > lo_g + _MIN_IMPROVE))
                | (valid_hi & (new_hi < hi_g - _MIN_IMPROVE)))
        for p in np.flatnonzero(cannot | flag):
            p = int(p)
            j = int(ce.idx[p])
            if j in fixed:
                continue
            n_fixed = len(fixed)
            if cannot[p]:
                ok = tighten(j, None, 0.0)
            else:
                ok = tighten(j,
                             float(new_lo[p]) if valid_lo[p] else None,
                             float(new_hi[p]) if valid_hi[p] else None)
            if not ok:
                return False
            if len(fixed) != n_fixed:
                return propagate_rest(row, act, ce, p + 1)
        return True

    def activity(row: _Row, ridx: int) -> _Activity:
        if use_vec and len(row.coeffs) >= _VEC_MIN:
            return activity_vec(row, ridx)
        act = _Activity()
        grouped: dict[int, list[float]] = {}
        for j, a in row.coeffs.items():
            gid = group_of.get(j)
            # A group's invariant must never be used on its own defining
            # row: "sum(x) == 1 holds, therefore sum(x) == 1 is
            # redundant" would drop the row that carries the invariant.
            if (gid is not None and not group_done[gid]
                    and group_def_row[gid] != ridx):
                grouped.setdefault(gid, []).append(a)
            elif a > 0:
                act.min_act += a * lo[j]
                act.max_act += a * hi[j]
            else:
                act.min_act += a * hi[j]
                act.max_act += a * lo[j]
        for gid, cs in grouped.items():
            if len(cs) == group_left[gid]:
                gmin, gmax = min(cs), max(cs)
            else:
                # The selected member may sit outside this row.
                gmin, gmax = min(0.0, min(cs)), max(0.0, max(cs))
            act.group_min[gid] = gmin
            act.group_max[gid] = gmax
            act.min_act += gmin
            act.max_act += gmax
        return act

    for j in range(n):
        if not snap_int(j):
            return infeasible()

    dirty: set[int] = set(range(len(rows)))
    max_rounds = 50
    while dirty and stats.rounds < max_rounds:
        stats.rounds += 1
        work, dirty = sorted(dirty), set()
        for r in work:
            row = rows[r]
            if not row.alive:
                continue

            # Constant row (everything substituted): feasibility check.
            if not row.coeffs:
                if row.lo > _FEAS_TOL or row.hi < -_FEAS_TOL:
                    return infeasible()
                row.alive = False
                stats.rows_dropped += 1
                continue

            # Singleton row -> variable bound.
            if len(row.coeffs) == 1:
                (j, a), = row.coeffs.items()
                if a > 0:
                    new_lo = row.lo / a if math.isfinite(row.lo) else None
                    new_hi = row.hi / a if math.isfinite(row.hi) else None
                else:
                    new_lo = row.hi / a if math.isfinite(row.hi) else None
                    new_hi = row.lo / a if math.isfinite(row.lo) else None
                row.alive = False
                stats.rows_dropped += 1
                columns[j].discard(r)
                if not tighten(j, new_lo, new_hi):
                    return infeasible()
                continue

            act = activity(row, r)

            # Best case already violates -> the whole model is infeasible.
            if (act.min_act > row.hi + _FEAS_TOL * (1 + abs(row.hi))
                    or act.max_act < row.lo - _FEAS_TOL * (1 + abs(row.lo))):
                return infeasible()
            # Worst case already satisfies -> the row teaches us nothing.
            if (act.min_act >= row.lo - _FEAS_TOL
                    and act.max_act <= row.hi + _FEAS_TOL):
                row.alive = False
                stats.rows_dropped += 1
                for j in row.coeffs:
                    columns[j].discard(r)
                continue

            # Bound propagation: residual activity bounds imply bounds
            # on each variable in the row.
            shape = (len(row.coeffs), row.lo, row.hi)
            if use_vec and len(row.coeffs) >= _VEC_MIN:
                if not propagate_vec(row, r, act):
                    return infeasible()
                if row.alive and row.coeffs:
                    if (len(row.coeffs), row.lo, row.hi) != shape:
                        act = activity(row, r)
                    ce = (row_arrays(r, row)
                          if len(row.coeffs) >= _VEC_MIN else None)
                    _tighten_coefficients(row, act, lo, hi, is_int,
                                          fixed, group_of, stats, ce)
                continue
            for j, a in list(row.coeffs.items()):
                if j in fixed:
                    continue
                gid = group_of.get(j)
                if gid is not None and gid in act.group_min:
                    # Selecting j zeroes its group siblings: the rest of
                    # the row is bounded by the activity minus the whole
                    # group term. If a alone cannot fit, j must be 0.
                    rest_min = act.min_act - act.group_min[gid]
                    rest_max = act.max_act - act.group_max[gid]
                    cannot_be_one = (
                        (math.isfinite(row.hi) and math.isfinite(rest_min)
                         and a > row.hi - rest_min + _FEAS_TOL)
                        or (math.isfinite(row.lo) and math.isfinite(rest_max)
                            and a < row.lo - rest_max - _FEAS_TOL)
                    )
                    if cannot_be_one:
                        if not tighten(j, None, 0.0):
                            return infeasible()
                    continue
                contrib_min = a * lo[j] if a > 0 else a * hi[j]
                contrib_max = a * hi[j] if a > 0 else a * lo[j]
                rest_min = act.min_act - contrib_min
                rest_max = act.max_act - contrib_max
                new_lo = new_hi = None
                if math.isfinite(row.hi) and math.isfinite(rest_min):
                    implied = (row.hi - rest_min) / a
                    if a > 0:
                        new_hi = implied
                    else:
                        new_lo = implied
                if math.isfinite(row.lo) and math.isfinite(rest_max):
                    implied = (row.lo - rest_max) / a
                    if a > 0:
                        new_lo = implied
                    else:
                        new_hi = implied
                if not tighten(j, new_lo, new_hi):
                    return infeasible()

            # Coefficient tightening on one-sided rows (binaries only).
            # Reuses the activity computed above when the row kept its
            # shape: bound tightening since then only makes it an
            # over-estimate of the row max — a looser-but-valid U. A
            # substitution (fix_var) rewrites coefficients and rhs, so
            # the activity must be recomputed to stay consistent.
            if row.alive and row.coeffs:
                if (len(row.coeffs), row.lo, row.hi) != shape:
                    act = activity(row, r)
                _tighten_coefficients(row, act, lo, hi, is_int,
                                      fixed, group_of, stats)

    # Dead columns: variables in no surviving row get their
    # objective-preferred bound (sense-aware); objective-free ones just
    # collapse to a bound so the reduced model shrinks.
    obj = model.objective.coeffs
    for j in range(n):
        if j in fixed or columns.get(j):
            continue
        coeff = obj.get(j, 0.0)
        if model.sense == "max":
            coeff = -coeff
        if coeff > 0:
            target = lo[j]
        elif coeff < 0:
            target = hi[j]
        else:
            target = lo[j] if math.isfinite(lo[j]) else hi[j]
        if math.isfinite(target):
            fix_var(j, target)
        # An unbounded preferred direction is left to the solver: it can
        # prove UNBOUNDED (or the objective simply ignores the variable).

    # ------------------------------------------------------------------
    # Emit the reduced model.
    # ------------------------------------------------------------------
    reduced = Model(f"{model.name}[presolved]")
    new_index: dict[int, int] = {}
    for var in model.variables:
        j = var.index
        if j in fixed:
            continue
        if var.kind == "binary" and lo[j] <= 0.0 and hi[j] >= 1.0:
            nv = reduced.binary(var.name)
        elif var.kind == "continuous":
            nv = reduced.continuous(var.name, lo=float(lo[j]),
                                    hi=float(hi[j]))
        else:
            nv = reduced.integer(var.name, lo=float(lo[j]), hi=float(hi[j]))
        new_index[j] = nv.index
        post.index_map[nv.index] = j

    for row in rows:
        if not row.alive:
            continue
        live = {new_index[j]: a for j, a in row.coeffs.items()
                if j not in fixed and a != 0.0}
        if not live:
            if row.lo > _FEAS_TOL or row.hi < -_FEAS_TOL:
                return infeasible()
            stats.rows_dropped += 1
            continue
        if math.isfinite(row.lo) and row.lo == row.hi:
            reduced.add(Constraint(LinExpr(live, -row.lo), "=="), row.name)
            continue
        if math.isfinite(row.hi):
            reduced.add(Constraint(LinExpr(dict(live), -row.hi), "<="),
                        row.name)
        if math.isfinite(row.lo):
            reduced.add(Constraint(LinExpr(dict(live), -row.lo), ">="),
                        row.name)

    obj_expr = LinExpr()
    obj_expr.constant = model.objective.constant + sum(
        c * fixed[j] for j, c in obj.items() if j in fixed
    )
    obj_expr.coeffs = {new_index[j]: c for j, c in obj.items()
                       if j not in fixed and c != 0.0}
    if model.sense == "max":
        reduced.maximize(obj_expr)
    else:
        reduced.minimize(obj_expr)

    post.fixed = fixed
    stats.vars_after = reduced.num_vars
    stats.cons_after = reduced.num_constraints
    return reduced, post


def _tighten_coefficients(row: _Row, act: _Activity, lo, hi, is_int,
                          fixed: dict[int, float], group_of: dict[int, int],
                          stats: PresolveStats,
                          ce: _RowArrays | None = None) -> None:
    """Savelsbergh coefficient reduction for binaries in one-sided rows.

    For ``a_j x_j + s <= b`` with ``x_j`` binary, ``a_j > 0`` and
    ``U = max(s)``: when ``U < b < U + a_j`` the pair ``(a_j, b)`` can be
    replaced by ``(a_j + U - b, U)`` — identical on x_j in {0, 1},
    strictly tighter for fractional x_j. This is what shrinks the big-M
    coefficients of the chain/interior rows, whose U is small once the
    one-hot schedule groups are accounted for. ``>=`` rows are handled
    by negation; range and equality rows are skipped, as are group
    members (their activity share is not a simple ``a_j`` term).
    """
    one_sided_le = math.isinf(row.lo) and math.isfinite(row.hi)
    one_sided_ge = math.isinf(row.hi) and math.isfinite(row.lo)
    if not (one_sided_le or one_sided_ge):
        return
    sign = 1.0 if one_sided_le else -1.0
    b = sign * (row.hi if one_sided_le else row.lo)

    max_act = act.max_act if one_sided_le else -act.min_act
    if not math.isfinite(max_act):
        return

    if ce is not None:
        # Array prefilter: the static candidate set (integer kind, not a
        # group member) is cached on the row snapshot; the dynamic
        # {0, 1}-domain check is a vector gather. The surviving loop is
        # sequential by construction — each tightening updates the
        # running (max_act, b) pair that the next candidate must see.
        jl, a_list = ce.jl, ce.a
        items = []
        for p in ce.tc_pos:
            j = jl[p]
            if lo[j] == 0.0 and hi[j] == 1.0:
                items.append((j, float(a_list[p])))
    else:
        items = [(j, a) for j, a in row.coeffs.items()
                 if not (j in fixed or not is_int[j] or lo[j] != 0.0
                         or hi[j] != 1.0 or j in group_of)]

    changed = False
    for j, a in items:
        sa = sign * a
        if sa > 0:
            u_others = max_act - sa          # row max with x_j forced to 0
            if (u_others < b - _MIN_IMPROVE
                    and u_others + sa > b + _MIN_IMPROVE):
                new_sa = sa + u_others - b
                max_act = u_others + new_sa
                b = u_others
                row.coeffs[j] = float(sign * new_sa)
                changed = True
                stats.coeffs_tightened += 1
        else:
            # sa < 0: x_j = 1 only relaxes the row. When even the relaxed
            # form is slack (max_act <= b - sa), pull a_j in so the
            # x_j = 1 bound becomes exactly the attainable max_act.
            u_others = max_act               # attained at x_j = 0
            if (u_others > b + _MIN_IMPROVE
                    and u_others < b - sa - _MIN_IMPROVE):
                new_sa = b - u_others        # negative, > sa
                row.coeffs[j] = float(sign * new_sa)
                changed = True
                stats.coeffs_tightened += 1
    if changed:
        # No re-dirty: only coefficients and the rhs moved, both in the
        # direction that keeps every bound-propagation residual valid;
        # the fixpoint on *bounds* is untouched.
        if one_sided_le:
            row.hi = float(sign * b)
        else:
            row.lo = float(sign * b)
        row.version += 1

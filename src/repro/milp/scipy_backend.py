"""HiGHS backend via :func:`scipy.optimize.milp`.

This is the production solver (the CPLEX stand-in). Models are lowered to
the sparse constraint-matrix form scipy expects; the paper's 60-minute cap
maps to the ``time_limit`` option, and like the paper we accept the best
incumbent when the limit fires (Sec. 4: "return the best solution found").
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from ..errors import SolverError
from .model import Model, Solution, SolveStatus

__all__ = ["solve_scipy"]

_KIND_TO_INTEGRALITY = {"continuous": 0, "integer": 1, "binary": 1}


def _lower(model: Model):
    """Lower a Model to (c, A, lb_con, ub_con, bounds, integrality)."""
    n = model.num_vars
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff
    if model.sense == "max":
        c = -c

    rows, cols, data = [], [], []
    lb_con, ub_con = [], []
    for row, con in enumerate(model.constraints):
        for idx, coeff in con.expr.coeffs.items():
            if coeff != 0.0:
                rows.append(row)
                cols.append(idx)
                data.append(coeff)
        rhs = -con.expr.constant
        if con.sense == "<=":
            lb_con.append(-np.inf)
            ub_con.append(rhs)
        elif con.sense == ">=":
            lb_con.append(rhs)
            ub_con.append(np.inf)
        else:
            lb_con.append(rhs)
            ub_con.append(rhs)
    a = sparse.csr_matrix(
        (data, (rows, cols)), shape=(len(model.constraints), n)
    )

    lo = np.array([v.lo for v in model.variables])
    hi = np.array([v.hi for v in model.variables])
    integrality = np.array(
        [_KIND_TO_INTEGRALITY[v.kind] for v in model.variables]
    )
    return c, a, np.array(lb_con), np.array(ub_con), lo, hi, integrality


def solve_scipy(model: Model, time_limit: float | None = None,
                mip_rel_gap: float | None = None,
                disp: bool = False) -> Solution:
    """Solve ``model`` with HiGHS; returns a :class:`Solution`."""
    if model.num_vars == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=0.0, values={})
    c, a, lb_con, ub_con, lo, hi, integrality = _lower(model)

    options: dict = {"disp": disp}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)

    constraints = (
        optimize.LinearConstraint(a, lb_con, ub_con)
        if model.num_constraints
        else ()
    )
    try:
        result = optimize.milp(
            c=c,
            constraints=constraints,
            bounds=optimize.Bounds(lo, hi),
            integrality=integrality,
            options=options,
        )
    except Exception as exc:  # pragma: no cover - scipy-internal failures
        raise SolverError(f"scipy.optimize.milp failed: {exc}") from exc

    # HiGHS statuses: 0 optimal, 1 iteration/time limit, 2 infeasible,
    # 3 unbounded, 4 other.
    if result.status == 0:
        status = SolveStatus.OPTIMAL
    elif result.status == 1 and result.x is not None:
        status = SolveStatus.FEASIBLE
    elif result.status == 1:
        # The cap fired before branch-and-bound found any incumbent. The
        # model is not known to be broken *or* infeasible — only under-
        # budgeted — so report that precisely instead of ERROR.
        status = SolveStatus.NO_INCUMBENT
    elif result.status == 2:
        status = SolveStatus.INFEASIBLE
    elif result.status == 3:
        status = SolveStatus.UNBOUNDED
    else:
        status = SolveStatus.ERROR

    values: dict[int, float] = {}
    objective = None
    message = str(getattr(result, "message", ""))
    if result.x is not None:
        # Snap integer variables; HiGHS returns values within tolerance.
        x = np.asarray(result.x, dtype=float)
        snapped = np.where(integrality > 0, np.round(x), x)
        # The snap moved the point; confirm it is still feasible before
        # recomputing the objective on it. A violation here means HiGHS's
        # integrality tolerance let a genuinely fractional point through —
        # surfacing it beats silently reporting a wrong objective. The
        # check reuses the already-assembled matrices (one spmv) instead
        # of re-walking every constraint expression in Python.
        tol = 1e-4
        violated = []
        if model.num_constraints:
            ax = a @ snapped
            for i in np.flatnonzero((ax < lb_con - tol) | (ax > ub_con + tol)):
                violated.append(model.constraints[i].name or f"c{i}")
        for j in np.flatnonzero((snapped < lo - tol) | (snapped > hi + tol)):
            violated.append(f"bounds:{model.variables[j].name}")
        if violated:
            preview = ", ".join(violated[:5])
            more = f" (+{len(violated) - 5} more)" if len(violated) > 5 else ""
            status = SolveStatus.ERROR
            message = (f"rounded solution violates {len(violated)} "
                       f"constraint(s): {preview}{more}")
        else:
            values = {i: float(v) for i, v in enumerate(snapped)}
            objective = model.objective.value(values)

    # HiGHS search effort, for the bench harness and trace spans.
    stats: dict = {}
    node_count = getattr(result, "mip_node_count", None)
    gap = getattr(result, "mip_gap", None)
    dual_bound = getattr(result, "mip_dual_bound", None)
    if node_count is not None:
        stats["nodes"] = int(node_count)
    if dual_bound is not None and np.isfinite(dual_bound):
        stats["dual_bound"] = float(dual_bound)
    if node_count is not None or gap is not None:
        detail = f"nodes={int(node_count) if node_count is not None else '?'}"
        if gap is not None:
            detail += f" gap={float(gap):.3g}"
        message = f"{message} [{detail}]" if message else detail
    return Solution(
        status=status,
        objective=objective,
        values=values,
        gap=float(gap) if gap is not None else None,
        message=message,
        stats=stats,
    )

"""A small MILP modeling layer.

The paper uses CPLEX; this module plays the role of its modeling API. It is
deliberately minimal: continuous/integer/binary variables with bounds, linear
expressions built with Python operators, ``<=``/``>=``/``==`` constraints, a
linear objective, and pluggable backends (:mod:`repro.milp.scipy_backend`,
:mod:`repro.milp.bnb`).

Example::

    m = Model("demo")
    x = m.binary("x")
    y = m.integer("y", lo=0, hi=10)
    m.add(x + 2 * y <= 7, name="cap")
    m.minimize(-(3 * x + y))
    sol = m.solve()
    print(sol[x], sol[y])
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import ModelError

__all__ = ["Var", "LinExpr", "Constraint", "Model", "Solution", "SolveStatus"]


@dataclass(frozen=True)
class Var:
    """A decision variable. Create via :class:`Model` factory methods."""

    index: int
    name: str
    kind: str  # "continuous" | "integer" | "binary"
    lo: float
    hi: float

    # -- expression building -------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self.index: 1.0}, 0.0)

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-1 * self._expr()) + other

    def __mul__(self, coeff: float):
        return self._expr() * coeff

    __rmul__ = __mul__

    def __neg__(self):
        return self._expr() * -1.0

    def __le__(self, other):
        return self._expr() <= other

    def __ge__(self, other):
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return self._expr() == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Var", self.index))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Var({self.name})"


class LinExpr:
    """A linear expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None,
                 constant: float = 0.0) -> None:
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    @staticmethod
    def _as_expr(x) -> "LinExpr":
        if isinstance(x, LinExpr):
            return x
        if isinstance(x, Var):
            return x._expr()
        if isinstance(x, (int, float)):
            return LinExpr({}, float(x))
        raise ModelError(f"cannot use {type(x).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.coeffs), self.constant)

    def __add__(self, other) -> "LinExpr":
        other = self._as_expr(other)
        out = self.copy()
        for idx, c in other.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + c
        out.constant += other.constant
        return out

    __radd__ = __add__

    def __sub__(self, other) -> "LinExpr":
        return self + (self._as_expr(other) * -1.0)

    def __rsub__(self, other) -> "LinExpr":
        return self._as_expr(other) + (self * -1.0)

    def __mul__(self, coeff) -> "LinExpr":
        if not isinstance(coeff, (int, float)):
            raise ModelError("expressions are linear: multiply by a scalar")
        out = LinExpr({i: c * coeff for i, c in self.coeffs.items()},
                      self.constant * coeff)
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other) -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other) -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Var, LinExpr, int, float)):
            return Constraint(self - other, "==")
        return NotImplemented

    def __hash__(self) -> int:  # expressions are mutable; identity hash
        return id(self)

    def value(self, assignment: Mapping[int, float]) -> float:
        """Evaluate under a variable-index assignment."""
        return self.constant + sum(
            c * assignment.get(i, 0.0) for i, c in self.coeffs.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*v{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms} + {self.constant:g})"


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` — normalized at construction."""

    expr: LinExpr
    sense: str
    name: str = ""

    def violation(self, assignment: Mapping[int, float]) -> float:
        """How much the constraint is violated (0 when satisfied)."""
        v = self.expr.value(assignment)
        if self.sense == "<=":
            return max(0.0, v)
        if self.sense == ">=":
            return max(0.0, -v)
        return abs(v)


class SolveStatus:
    """Status constants shared by all backends."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"  # time limit hit, incumbent returned
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: The time cap fired before the solver found *any* incumbent: the
    #: model may well be feasible — the cap is simply too tight. Distinct
    #: from ERROR so callers can raise a precise "raise the time limit"
    #: diagnosis instead of a generic solver failure.
    NO_INCUMBENT = "no-incumbent"
    ERROR = "error"


@dataclass
class Solution:
    """Result of :meth:`Model.solve`."""

    status: str
    objective: float | None
    values: dict[int, float] = field(default_factory=dict)
    solve_seconds: float = 0.0
    gap: float | None = None
    message: str = ""
    #: Backend bookkeeping (node counts, LP counts, presolve reductions);
    #: read by the bench harness, never by the schedulers.
    stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when a usable assignment is available."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def __getitem__(self, var: Var) -> float:
        return self.values.get(var.index, 0.0)

    def int_value(self, var: Var) -> int:
        """Rounded value (for integer/binary variables)."""
        return int(round(self[var]))


class Model:
    """An MILP under construction."""

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self.variables: list[Var] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense = "min"

    # -- variable factories ----------------------------------------------
    def _new_var(self, name: str, kind: str, lo: float, hi: float) -> Var:
        if hi < lo:
            raise ModelError(f"variable {name}: empty domain [{lo}, {hi}]")
        var = Var(len(self.variables), name or f"v{len(self.variables)}",
                  kind, lo, hi)
        self.variables.append(var)
        return var

    def continuous(self, name: str = "", lo: float = 0.0,
                   hi: float = float("inf")) -> Var:
        """A continuous variable with bounds [lo, hi]."""
        return self._new_var(name, "continuous", lo, hi)

    def integer(self, name: str = "", lo: float = 0.0,
                hi: float = float("inf")) -> Var:
        """An integer variable with bounds [lo, hi]."""
        return self._new_var(name, "integer", lo, hi)

    def binary(self, name: str = "") -> Var:
        """A 0/1 variable."""
        return self._new_var(name, "binary", 0.0, 1.0)

    # -- constraints and objective ---------------------------------------
    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (returns it for convenience)."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "Model.add expects a comparison of linear expressions; "
                f"got {type(constraint).__name__} (a bare bool usually means "
                "two constants were compared)"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def minimize(self, expr: LinExpr | Var) -> None:
        """Set a minimization objective."""
        self.objective = LinExpr._as_expr(expr)
        self.sense = "min"

    def maximize(self, expr: LinExpr | Var) -> None:
        """Set a maximization objective."""
        self.objective = LinExpr._as_expr(expr)
        self.sense = "max"

    # -- introspection ---------------------------------------------------
    @property
    def num_vars(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_vars(self) -> int:
        return sum(1 for v in self.variables if v.kind != "continuous")

    def lint(self):
        """Run the MILP static-analysis rules over this model.

        Returns a :class:`~repro.analysis.DiagnosticReport` flagging
        trivially infeasible constraints, dead variables, by-construction
        unbounded objectives, non-finite coefficients and duplicate
        constraints (codes ``MILP001``–``MILP005``).
        """
        from ..analysis import lint_model

        return lint_model(self)

    def check(self, assignment: Mapping[int, float],
              tol: float = 1e-6) -> list[str]:
        """Names/indices of constraints violated by ``assignment``."""
        bad = []
        for i, con in enumerate(self.constraints):
            if con.violation(assignment) > tol:
                bad.append(con.name or f"c{i}")
        for var in self.variables:
            val = assignment.get(var.index, 0.0)
            if val < var.lo - tol or val > var.hi + tol:
                bad.append(f"bounds:{var.name}")
            if var.kind != "continuous" and abs(val - round(val)) > 1e-4:
                bad.append(f"integrality:{var.name}")
        return bad

    # -- solving -----------------------------------------------------------
    def solve(self, backend: str = "scipy", time_limit: float | None = None,
              presolve: bool = False, **options) -> Solution:
        """Solve with the named backend (``"scipy"`` or ``"bnb"``).

        ``presolve=True`` runs :func:`repro.milp.presolve.presolve`
        first, solves the reduced model, and reports the solution in the
        original variable space (the reduction statistics land in
        ``Solution.stats["presolve"]``). Schedulers drive presolve
        explicitly for span accounting; this flag is the convenience
        path used by tests and the fuzz oracle.
        """
        start = time.perf_counter()
        if presolve:
            from .presolve import presolve as run_presolve

            reduced, post = run_presolve(self)
            if post.status is not None:
                return Solution(
                    status=post.status, objective=None,
                    solve_seconds=time.perf_counter() - start,
                    message="presolve proved infeasibility",
                    stats={"presolve": post.stats.to_dict()},
                )
            sol = reduced.solve(backend=backend, time_limit=time_limit,
                                presolve=False, **options)
            sol = post.expand(sol)
            sol.stats["presolve"] = post.stats.to_dict()
            sol.solve_seconds = time.perf_counter() - start
            return sol
        if backend == "scipy":
            from .scipy_backend import solve_scipy

            sol = solve_scipy(self, time_limit=time_limit, **options)
        elif backend == "bnb":
            from .bnb import solve_branch_and_bound

            sol = solve_branch_and_bound(self, time_limit=time_limit, **options)
        else:
            raise ModelError(f"unknown backend {backend!r}")
        sol.solve_seconds = time.perf_counter() - start
        return sol

"""CPLEX-LP-format export for models.

Writes a :class:`~repro.milp.model.Model` as an industry-standard ``.lp``
file so the exact MILPs can be handed to CPLEX/Gurobi/SCIP — the paper's
actual solver setup. Also parses the simple ``variable value`` solution
listing those tools can emit, so externally-computed solutions flow back
into :meth:`~repro.core.formulation.MappingAwareFormulation.extract`.
"""

from __future__ import annotations

from ..errors import ModelError
from .model import Model, Solution, SolveStatus

__all__ = ["write_lp", "parse_solution_listing"]


def _term(coeff: float, name: str, first: bool) -> str:
    sign = "" if (first and coeff >= 0) else ("+ " if coeff >= 0 else "- ")
    mag = abs(coeff)
    if mag == 1.0:
        return f"{sign}{name}"
    return f"{sign}{mag:g} {name}"


def _expr_text(model: Model, coeffs: dict[int, float]) -> str:
    parts = []
    for idx in sorted(coeffs):
        coeff = coeffs[idx]
        if coeff == 0.0:
            continue
        parts.append(_term(coeff, _safe_name(model.variables[idx].name),
                           first=not parts))
    return " ".join(parts) if parts else "0 dummy_zero"


def _safe_name(name: str) -> str:
    out = "".join(ch if ch.isalnum() or ch in "_." else "_" for ch in name)
    if not out or out[0].isdigit():
        out = "v_" + out
    return out


def write_lp(model: Model) -> str:
    """Render the model as CPLEX LP text."""
    lines: list[str] = []
    lines.append(f"\\ model {model.name}")
    lines.append("Minimize" if model.sense == "min" else "Maximize")
    obj = _expr_text(model, model.objective.coeffs)
    lines.append(f" obj: {obj}")
    lines.append("Subject To")
    for i, con in enumerate(model.constraints):
        rel = {"<=": "<=", ">=": ">=", "==": "="}[con.sense]
        rhs = -con.expr.constant
        if rhs == 0.0:
            rhs = 0.0  # normalize -0.0
        name = _safe_name(con.name) if con.name else f"c{i}"
        lines.append(
            f" {name}: {_expr_text(model, con.expr.coeffs)} {rel} {rhs:g}"
        )
    lines.append("Bounds")
    for var in model.variables:
        name = _safe_name(var.name)
        hi = "+inf" if var.hi == float("inf") else f"{var.hi:g}"
        lo = "-inf" if var.lo == float("-inf") else f"{var.lo:g}"
        lines.append(f" {lo} <= {name} <= {hi}")
    generals = [v for v in model.variables if v.kind == "integer"]
    binaries = [v for v in model.variables if v.kind == "binary"]
    if generals:
        lines.append("Generals")
        lines.append(" " + " ".join(_safe_name(v.name) for v in generals))
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(_safe_name(v.name) for v in binaries))
    lines.append("End")
    return "\n".join(lines) + "\n"


def parse_solution_listing(model: Model, text: str,
                           objective: float | None = None) -> Solution:
    """Parse ``name value`` lines (one per variable) into a Solution.

    Unlisted variables default to 0 — the convention of CPLEX's
    ``write sol`` flat listings. Raises :class:`ModelError` on names that
    match no variable.
    """
    by_name = {_safe_name(v.name): v for v in model.variables}
    values: dict[int, float] = {}
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ModelError(f"solution line {line_no}: expected 'name value'")
        name, value = parts
        if name not in by_name:
            raise ModelError(f"solution line {line_no}: unknown variable {name}")
        values[by_name[name].index] = float(value)
    for var in model.variables:
        values.setdefault(var.index, 0.0)
    obj = objective if objective is not None else model.objective.value(values)
    status = SolveStatus.FEASIBLE
    if not model.check(values):
        status = SolveStatus.FEASIBLE
    return Solution(status=status, objective=obj, values=values,
                    message="external solution listing")

"""MILP modeling layer and solver backends (the CPLEX stand-in)."""

from .model import Constraint, LinExpr, Model, Solution, SolveStatus, Var
from .presolve import Postsolve, PresolveStats, presolve
from .writer import parse_solution_listing, write_lp

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "Postsolve",
    "PresolveStats",
    "Solution",
    "SolveStatus",
    "Var",
    "parse_solution_listing",
    "presolve",
    "write_lp",
]

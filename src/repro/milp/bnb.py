"""A pure-Python branch-and-bound MILP solver.

Educational/backup backend: LP relaxations are solved with HiGHS's *LP*
solver (``scipy.optimize.linprog``), and integrality is enforced by
branching. It is orders of magnitude slower than
:mod:`repro.milp.scipy_backend` on large models but exercises the same
:class:`~repro.milp.model.Model` contract and is handy for verifying the
production backend on small instances (the test suite cross-checks the
two).

The search is best-bound with several of the devices a real MIP solver
leans on (see ``docs/performance.md`` for measurements):

* **warm starts** — a caller-supplied feasible assignment becomes the
  initial incumbent after re-validation with :meth:`Model.check`, so
  pruning starts at the root instead of after the first dive;
* **bound lifting** — when the objective restricted to the model is
  provably integral (all-integer support, integral coefficients), every
  LP bound is rounded up to the next integer, which closes unit-sized
  gaps without branching;
* **pseudo-cost branching** — per-variable averages of the LP
  degradation observed when branching down/up rank candidate variables
  (product score); variables with no history yet fall back to
  most-fractional selection so early branches still learn;
* **a dive heuristic** — bounded LP re-solves (``_DIVE_LPS``) that round
  the relaxation toward ``branch_hints`` to manufacture an incumbent
  early when the caller could not supply one;
* **lazy pruning** — nodes are pruned against the incumbent both at push
  and at pop time (the heap is never rebuilt), and an exhausted search
  whose surviving heap entries are all prunable reports ``OPTIMAL``, not
  ``FEASIBLE``.

Hitting a node/time limit with no incumbent reports ``NO_INCUMBENT``
(the model may well be feasible — the cap was simply too tight), in line
with the scipy backend's contract.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from typing import Mapping

import numpy as np
from scipy import optimize, sparse

from ..vectorize import vectorize_enabled
from .model import Model, Solution, SolveStatus

__all__ = ["solve_branch_and_bound"]

_EPS = 1e-6
#: LP budget for the rounding/dive primal heuristic.
_DIVE_LPS = 30


def _relaxation_matrices(model: Model):
    n = model.num_vars
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff
    if model.sense == "max":
        c = -c

    ub_rows, ub_cols, ub_data, b_ub = [], [], [], []
    eq_rows, eq_cols, eq_data, b_eq = [], [], [], []
    for con in model.constraints:
        rhs = -con.expr.constant
        if con.sense == "==":
            row = len(b_eq)
            for idx, coeff in con.expr.coeffs.items():
                eq_rows.append(row)
                eq_cols.append(idx)
                eq_data.append(coeff)
            b_eq.append(rhs)
        else:
            sign = 1.0 if con.sense == "<=" else -1.0
            row = len(b_ub)
            for idx, coeff in con.expr.coeffs.items():
                ub_rows.append(row)
                ub_cols.append(idx)
                ub_data.append(sign * coeff)
            b_ub.append(sign * rhs)

    a_ub = sparse.csr_matrix((ub_data, (ub_rows, ub_cols)),
                             shape=(len(b_ub), n)) if b_ub else None
    a_eq = sparse.csr_matrix((eq_data, (eq_rows, eq_cols)),
                             shape=(len(b_eq), n)) if b_eq else None
    return c, a_ub, np.array(b_ub), a_eq, np.array(b_eq)


def solve_branch_and_bound(model: Model, time_limit: float | None = None,
                           max_nodes: int = 200000,
                           mip_abs_gap: float = 1e-6,
                           mip_rel_gap: float | None = None,
                           warm_start: Mapping[int, float] | None = None,
                           branch_hints: Mapping[int, float] | None = None,
                           vectorize: bool | None = None,
                           ) -> Solution:
    """Solve ``model`` by branch and bound over LP relaxations.

    ``warm_start`` is a feasible original-space assignment (variable
    index -> value); it is re-validated with :meth:`Model.check` and
    silently ignored when stale, so callers may pass best-effort hints.
    ``branch_hints`` biases the dive heuristic's rounding direction
    (typically the schedule found at a previous II). ``vectorize``
    selects the numpy per-node branching kernels (identical picks and
    pseudo-costs; see docs/performance.md) and defaults to
    ``REPRO_VECTORIZE``.
    """
    if model.num_vars == 0:
        return Solution(status=SolveStatus.OPTIMAL,
                        objective=model.objective.value({}), values={})

    c, a_ub, b_ub, a_eq, b_eq = _relaxation_matrices(model)
    int_vars = [v.index for v in model.variables if v.kind != "continuous"]
    base_lo = np.array([v.lo for v in model.variables], dtype=float)
    base_hi = np.array([v.hi for v in model.variables], dtype=float)
    hints = dict(branch_hints or {})
    # The numpy branching kernels pay a fixed per-node overhead; below a
    # handful of integer variables the scalar loops win. Both paths pick
    # identical variables (tests/test_vectorize.py), so the threshold is a
    # pure speed knob.
    use_vec = vectorize_enabled(vectorize) and len(int_vars) >= 16
    ivs = np.array(int_vars, dtype=np.intp) if use_vec else None

    # Bound lifting is sound when c.x is integral at every integer point:
    # the objective must not touch continuous variables and all integer
    # coefficients must be integers. (The scheduling objective carries a
    # 1e-4 regularizer, so the lift mostly fires on test/microbench
    # models — cheap to detect, free when inapplicable.)
    int_set = set(int_vars)
    integral_obj = all(
        idx in int_set and abs(coeff - round(coeff)) < 1e-9
        for idx, coeff in enumerate(c) if coeff != 0.0
    )

    def lift(bound: float) -> float:
        return math.ceil(bound - _EPS) if integral_obj else bound

    start = time.monotonic()
    deadline = start + time_limit if time_limit is not None else None
    lps = 0

    def solve_lp(lo: np.ndarray, hi: np.ndarray):
        nonlocal lps
        lps += 1
        return optimize.linprog(
            c, A_ub=a_ub, b_ub=b_ub if a_ub is not None else None,
            A_eq=a_eq, b_eq=b_eq if a_eq is not None else None,
            bounds=np.column_stack([lo, hi]), method="highs",
        )

    def most_fractional(x: np.ndarray) -> int | None:
        if use_vec:
            # First-minimizer semantics match the scalar loop: np.argmin
            # returns the first occurrence of the minimum, exactly what a
            # strict `<` update over int_vars order produces.
            xi = x[ivs]
            frac = np.abs(xi - np.round(xi))
            cand = frac > _EPS
            if not cand.any():
                return None
            dist = np.where(cand, np.abs(frac - 0.5), np.inf)
            return int(ivs[np.argmin(dist)])
        pick, best = None, 1.0
        for idx in int_vars:
            frac = abs(x[idx] - round(x[idx]))
            if frac > _EPS and abs(frac - 0.5) < best:
                pick, best = idx, abs(frac - 0.5)
        return pick

    incumbent: np.ndarray | None = None
    incumbent_obj = np.inf
    warm_used = False

    def prune_eps() -> float:
        if mip_rel_gap is not None and np.isfinite(incumbent_obj):
            return max(mip_abs_gap, mip_rel_gap * abs(incumbent_obj))
        return mip_abs_gap

    def offer_incumbent(x: np.ndarray, obj: float) -> None:
        nonlocal incumbent, incumbent_obj
        if obj < incumbent_obj - _EPS:
            incumbent = x.copy()
            incumbent_obj = obj

    if warm_start and not model.check(warm_start):
        xw = np.array([float(warm_start.get(v.index, 0.0))
                       for v in model.variables])
        offer_incumbent(xw, float(c @ xw))
        warm_used = incumbent is not None

    root = solve_lp(base_lo, base_hi)
    if root.status == 2:
        return Solution(status=SolveStatus.INFEASIBLE, objective=None)
    if root.status == 3:
        return Solution(status=SolveStatus.UNBOUNDED, objective=None)
    if root.status != 0:
        return Solution(status=SolveStatus.ERROR, objective=None,
                        message=str(root.message))

    def dive(x0: np.ndarray, lo0: np.ndarray, hi0: np.ndarray) -> None:
        """Round-and-refix primal heuristic: hint-directed rounding."""
        lo, hi = lo0.copy(), hi0.copy()
        x = x0
        for _ in range(_DIVE_LPS):
            if deadline is not None and time.monotonic() > deadline:
                return
            j = most_fractional(x)
            if j is None:
                offer_incumbent(x, float(c @ x))
                return
            target = hints.get(j)
            val = round(target) if target is not None else round(x[j])
            val = min(max(val, lo[j]), hi[j])
            lo[j] = hi[j] = float(val)
            res = solve_lp(lo, hi)
            if res.status != 0:
                return
            x = res.x

    if most_fractional(root.x) is None:
        offer_incumbent(root.x, float(root.fun))
    elif incumbent is None:
        dive(root.x, base_lo, base_hi)

    counter = itertools.count()
    heap: list[tuple[float, int, np.ndarray, np.ndarray, np.ndarray]] = []
    root_bound = lift(float(root.fun))
    if root_bound < incumbent_obj - prune_eps():
        heapq.heappush(heap, (root_bound, next(counter), root.x,
                              base_lo, base_hi))

    # Pseudo-costs: per-variable running averages of the LP objective
    # degradation per unit of fractionality, learned as branches resolve.
    # The vectorized path keeps the same state in four flat arrays.
    pc_dn: dict[int, tuple[float, int]] = {}
    pc_up: dict[int, tuple[float, int]] = {}
    if use_vec:
        nv = model.num_vars
        pc_s_dn, pc_n_dn = np.zeros(nv), np.zeros(nv)
        pc_s_up, pc_n_up = np.zeros(nv), np.zeros(nv)

    def pick_branch_var(x: np.ndarray) -> int | None:
        if use_vec:
            xi = x[ivs]
            frac = np.abs(xi - np.round(xi))
            cand = frac > _EPS
            if not cand.any():
                return None
            learned = (pc_n_dn[ivs] > 0) & (pc_n_up[ivs] > 0)
            unl = cand & ~learned
            if unl.any():
                dist = np.where(unl, np.abs(frac - 0.5), np.inf)
                return int(ivs[np.argmin(dist)])
            sel = np.flatnonzero(cand)
            idxs = ivs[sel]
            f = xi[sel] - np.floor(xi[sel])
            score = (np.maximum(_EPS, (pc_s_dn[idxs] / pc_n_dn[idxs]) * f)
                     * np.maximum(_EPS, (pc_s_up[idxs] / pc_n_up[idxs])
                                  * (1.0 - f)))
            # np.argmax = first maximizer, matching the strict `>` update.
            return int(idxs[np.argmax(score)])
        unlearned, pick, best_score = None, None, -1.0
        best_frac = 1.0
        for idx in int_vars:
            frac = abs(x[idx] - round(x[idx]))
            if frac <= _EPS:
                continue
            f = x[idx] - math.floor(x[idx])
            if idx not in pc_dn or idx not in pc_up:
                # No history: most-fractional fallback (and every branch
                # on an unlearned variable feeds the pseudo-costs).
                if abs(frac - 0.5) < best_frac:
                    unlearned, best_frac = idx, abs(frac - 0.5)
                continue
            s_dn, n_dn = pc_dn[idx]
            s_up, n_up = pc_up[idx]
            score = (max(_EPS, (s_dn / n_dn) * f)
                     * max(_EPS, (s_up / n_up) * (1.0 - f)))
            if score > best_score:
                pick, best_score = idx, score
        return unlearned if unlearned is not None else pick

    nodes = 0
    hit_limit = False

    while heap:
        if nodes >= max_nodes or (deadline is not None
                                  and time.monotonic() > deadline):
            hit_limit = True
            break
        bound, _, x, lo, hi = heapq.heappop(heap)
        if bound >= incumbent_obj - prune_eps():
            continue  # stale entry: pruned lazily, heap never rebuilt
        nodes += 1

        frac_var = pick_branch_var(x)
        if frac_var is None:
            offer_incumbent(x, float(c @ x))
            continue

        floor_val = math.floor(x[frac_var])
        f = x[frac_var] - floor_val
        for branch in ("down", "up"):
            new_lo = lo.copy()
            new_hi = hi.copy()
            if branch == "down":
                new_hi[frac_var] = floor_val
            else:
                new_lo[frac_var] = floor_val + 1.0
            if new_lo[frac_var] > new_hi[frac_var] + _EPS:
                continue
            res = solve_lp(new_lo, new_hi)
            if res.status != 0:
                continue
            degrade = max(0.0, float(res.fun) - float(bound))
            if branch == "down":
                if use_vec:
                    pc_s_dn[frac_var] += degrade / max(f, _EPS)
                    pc_n_dn[frac_var] += 1.0
                else:
                    s, k = pc_dn.get(frac_var, (0.0, 0))
                    pc_dn[frac_var] = (s + degrade / max(f, _EPS), k + 1)
            else:
                if use_vec:
                    pc_s_up[frac_var] += degrade / max(1.0 - f, _EPS)
                    pc_n_up[frac_var] += 1.0
                else:
                    s, k = pc_up.get(frac_var, (0.0, 0))
                    pc_up[frac_var] = (s + degrade / max(1.0 - f, _EPS), k + 1)
            child_bound = lift(float(res.fun))
            if child_bound >= incumbent_obj - prune_eps():
                continue
            if most_fractional(res.x) is None:
                # Integral child: incumbent immediately, nothing to push.
                offer_incumbent(res.x, child_bound)
            else:
                heapq.heappush(heap, (child_bound, next(counter), res.x,
                                      new_lo, new_hi))

    if incumbent is None:
        if hit_limit:
            return Solution(status=SolveStatus.NO_INCUMBENT, objective=None,
                            message=f"node/time limit before any incumbent "
                                    f"(nodes={nodes} lps={lps})",
                            stats={"nodes": nodes, "lps": lps})
        return Solution(status=SolveStatus.INFEASIBLE, objective=None,
                        stats={"nodes": nodes, "lps": lps})

    values: dict[int, float] = {}
    for var in model.variables:
        v = float(incumbent[var.index])
        if var.kind != "continuous":
            v = float(round(v))
        values[var.index] = v
    objective = model.objective.value(values)

    # Drain check: surviving heap entries that cannot beat the incumbent
    # do not make the solution non-optimal — a limit-terminated search
    # whose frontier is fully prunable has in fact been exhausted.
    eps = prune_eps()
    open_bounds = [b for b, *_ in heap if b < incumbent_obj - eps]
    if open_bounds:
        status = SolveStatus.FEASIBLE
        gap = (incumbent_obj - min(open_bounds)) / max(1.0, abs(incumbent_obj))
    else:
        status = SolveStatus.OPTIMAL
        gap = 0.0
    return Solution(status=status, objective=objective, values=values,
                    gap=gap, message=f"nodes={nodes} lps={lps}",
                    stats={"nodes": nodes, "lps": lps,
                           "warm_start": warm_used})

"""A pure-Python branch-and-bound MILP solver.

Educational/backup backend: LP relaxations are solved with HiGHS's *LP*
solver (``scipy.optimize.linprog``), and integrality is enforced by
branching. Best-bound node selection with most-fractional branching. It is
orders of magnitude slower than :mod:`repro.milp.scipy_backend` on large
models but exercises the same :class:`~repro.milp.model.Model` contract and
is handy for verifying the production backend on small instances (the test
suite cross-checks the two).
"""

from __future__ import annotations

import heapq
import itertools
import time

import numpy as np
from scipy import optimize, sparse

from .model import Model, Solution, SolveStatus

__all__ = ["solve_branch_and_bound"]

_EPS = 1e-6


def _relaxation_matrices(model: Model):
    n = model.num_vars
    c = np.zeros(n)
    for idx, coeff in model.objective.coeffs.items():
        c[idx] = coeff
    if model.sense == "max":
        c = -c

    ub_rows, ub_cols, ub_data, b_ub = [], [], [], []
    eq_rows, eq_cols, eq_data, b_eq = [], [], [], []
    for con in model.constraints:
        rhs = -con.expr.constant
        if con.sense == "==":
            row = len(b_eq)
            for idx, coeff in con.expr.coeffs.items():
                eq_rows.append(row)
                eq_cols.append(idx)
                eq_data.append(coeff)
            b_eq.append(rhs)
        else:
            sign = 1.0 if con.sense == "<=" else -1.0
            row = len(b_ub)
            for idx, coeff in con.expr.coeffs.items():
                ub_rows.append(row)
                ub_cols.append(idx)
                ub_data.append(sign * coeff)
            b_ub.append(sign * rhs)

    a_ub = sparse.csr_matrix((ub_data, (ub_rows, ub_cols)),
                             shape=(len(b_ub), n)) if b_ub else None
    a_eq = sparse.csr_matrix((eq_data, (eq_rows, eq_cols)),
                             shape=(len(b_eq), n)) if b_eq else None
    return c, a_ub, np.array(b_ub), a_eq, np.array(b_eq)


def solve_branch_and_bound(model: Model, time_limit: float | None = None,
                           max_nodes: int = 200000,
                           mip_abs_gap: float = 1e-6) -> Solution:
    """Solve ``model`` by branch and bound over LP relaxations."""
    if model.num_vars == 0:
        return Solution(status=SolveStatus.OPTIMAL, objective=0.0, values={})

    c, a_ub, b_ub, a_eq, b_eq = _relaxation_matrices(model)
    int_vars = [v.index for v in model.variables if v.kind != "continuous"]
    base_lo = np.array([v.lo for v in model.variables], dtype=float)
    base_hi = np.array([v.hi for v in model.variables], dtype=float)

    start = time.monotonic()
    deadline = start + time_limit if time_limit is not None else None

    def solve_lp(lo: np.ndarray, hi: np.ndarray):
        res = optimize.linprog(
            c, A_ub=a_ub, b_ub=b_ub if a_ub is not None else None,
            A_eq=a_eq, b_eq=b_eq if a_eq is not None else None,
            bounds=np.column_stack([lo, hi]), method="highs",
        )
        return res

    incumbent: np.ndarray | None = None
    incumbent_obj = np.inf
    counter = itertools.count()

    root = solve_lp(base_lo, base_hi)
    if root.status == 2:
        return Solution(status=SolveStatus.INFEASIBLE, objective=None)
    if root.status == 3:
        return Solution(status=SolveStatus.UNBOUNDED, objective=None)
    if root.status != 0:
        return Solution(status=SolveStatus.ERROR, objective=None,
                        message=str(root.message))

    heap: list[tuple[float, int, np.ndarray, np.ndarray, np.ndarray]] = []
    heapq.heappush(heap, (root.fun, next(counter), root.x, base_lo, base_hi))
    nodes = 0
    hit_limit = False

    while heap:
        bound, _, x, lo, hi = heapq.heappop(heap)
        if bound >= incumbent_obj - mip_abs_gap:
            continue  # pruned by bound
        nodes += 1
        if nodes > max_nodes or (deadline is not None
                                 and time.monotonic() > deadline):
            hit_limit = True
            break

        frac_var = None
        worst_frac = 0.0
        for idx in int_vars:
            frac = abs(x[idx] - round(x[idx]))
            if frac > _EPS and abs(frac - 0.5) <= abs(worst_frac - 0.5):
                frac_var = idx
                worst_frac = frac
        if frac_var is None:
            # Integral: candidate incumbent.
            if bound < incumbent_obj - mip_abs_gap:
                incumbent = x.copy()
                incumbent_obj = bound
            continue

        floor_val = np.floor(x[frac_var])
        for branch in ("down", "up"):
            new_lo = lo.copy()
            new_hi = hi.copy()
            if branch == "down":
                new_hi[frac_var] = floor_val
            else:
                new_lo[frac_var] = floor_val + 1.0
            if new_lo[frac_var] > new_hi[frac_var] + _EPS:
                continue
            res = solve_lp(new_lo, new_hi)
            if res.status != 0:
                continue
            if res.fun < incumbent_obj - mip_abs_gap:
                heapq.heappush(
                    heap, (res.fun, next(counter), res.x, new_lo, new_hi)
                )

    if incumbent is None:
        if hit_limit:
            return Solution(status=SolveStatus.ERROR, objective=None,
                            message="node/time limit without incumbent")
        return Solution(status=SolveStatus.INFEASIBLE, objective=None)

    values: dict[int, float] = {}
    for var in model.variables:
        v = float(incumbent[var.index])
        if var.kind != "continuous":
            v = float(round(v))
        values[var.index] = v
    objective = model.objective.value(values)
    status = SolveStatus.FEASIBLE if (hit_limit or heap) else SolveStatus.OPTIMAL
    # An empty heap with no limit hit means the tree was fully explored.
    if not hit_limit and not heap:
        status = SolveStatus.OPTIMAL
    return Solution(status=status, objective=objective, values=values,
                    message=f"nodes={nodes}")
